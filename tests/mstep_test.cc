// The M-step workspace contract (the PR-3 counterpart of engine_test.cc):
//  - the second UpdateTransitions call at a fixed k performs zero heap
//    allocations (instrumented global operator new),
//  - the fused LogDetAndGrad entry point agrees with the separate
//    log-det / gradient entry points to 1e-12,
//  - workspace reuse across state counts never changes results,
//  - BatchMStepDriver fan-outs (SelectStateCount, crossval folds) are
//    bitwise identical for every thread count.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_mstep.h"
#include "core/state_selection.h"
#include "core/transition_update.h"
#include "dpp/logdet.h"
#include "eval/crossval.h"
#include "hmm/sampler.h"
#include "optim/projected_gradient.h"
#include "optim/simplex_projection.h"
#include "prob/categorical_emission.h"
#include "prob/rng.h"

// ----------------------------------------------------- allocation counter ---

// Global operator new instrumentation: every heap allocation made anywhere
// in this binary bumps the counter, so a zero delta across a call proves the
// call is allocation-free.
namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dhmm {
namespace {

linalg::Matrix RandomCounts(size_t k, uint64_t seed) {
  prob::Rng rng(seed);
  linalg::Matrix counts(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) counts(i, j) = 1.0 + 20.0 * rng.Uniform();
  }
  return counts;
}

// ------------------------------------------------------- allocation-free ---

TEST(MStepWorkspaceTest, SecondUpdateAtFixedKAllocatesNothing) {
  const size_t k = 12;
  prob::Rng rng(1);
  linalg::Matrix counts = RandomCounts(k, 2);
  linalg::Matrix init = rng.RandomStochasticMatrix(k, k, 2.0);
  core::TransitionUpdateOptions opts;
  opts.alpha = 2.0;

  core::TransitionUpdateWorkspace ws;
  core::TransitionUpdateResult result;
  // First call grows every buffer to its steady-state size.
  core::UpdateTransitions(init, counts, opts, &ws, &result);

  long before = g_alloc_count.load(std::memory_order_relaxed);
  core::UpdateTransitions(init, counts, opts, &ws, &result);
  long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state M-step made " << (after - before)
      << " heap allocations";
  EXPECT_TRUE(result.a.IsRowStochastic(1e-8));
}

TEST(MStepWorkspaceTest, TetheredUpdateIsAlsoAllocationFree) {
  const size_t k = 8;
  prob::Rng rng(3);
  linalg::Matrix counts = RandomCounts(k, 4);
  linalg::Matrix a0 = rng.RandomStochasticMatrix(k, k, 2.0);
  core::TransitionUpdateOptions opts;
  opts.alpha = 5.0;
  opts.tether = &a0;
  opts.tether_weight = 10.0;

  core::TransitionUpdateWorkspace ws;
  core::TransitionUpdateResult result;
  core::UpdateTransitions(a0, counts, opts, &ws, &result);

  long before = g_alloc_count.load(std::memory_order_relaxed);
  core::UpdateTransitions(a0, counts, opts, &ws, &result);
  long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);
}

// ------------------------------------------------------ fused equivalence ---

TEST(FusedLogDetTest, MatchesSeparateEntryPoints) {
  for (size_t k : {3u, 8u, 20u}) {
    for (double rho : {0.5, 0.7}) {
      prob::Rng rng(10 + k);
      linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 2.0);

      double ld_separate = dpp::LogDetNormalizedKernel(a, rho);
      linalg::Matrix grad_separate;
      ASSERT_TRUE(dpp::GradLogDetNormalizedKernel(a, rho, &grad_separate));

      dpp::KernelWorkspace ws;
      double ld_fused = 0.0;
      linalg::Matrix grad_fused;
      ASSERT_TRUE(dpp::LogDetAndGrad(a, rho, &ws, &ld_fused, &grad_fused));

      EXPECT_NEAR(ld_fused, ld_separate,
                  1e-12 * (1.0 + std::fabs(ld_separate)))
          << "k=" << k << " rho=" << rho;
      ASSERT_EQ(grad_fused.rows(), grad_separate.rows());
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = 0; j < k; ++j) {
          EXPECT_NEAR(grad_fused(i, j), grad_separate(i, j),
                      1e-12 * (1.0 + std::fabs(grad_separate(i, j))))
              << "k=" << k << " rho=" << rho << " at (" << i << "," << j
              << ")";
        }
      }
    }
  }
}

TEST(FusedLogDetTest, WorkspaceLogDetMatchesAllocatingOverload) {
  for (size_t k : {2u, 6u, 15u}) {
    prob::Rng rng(20 + k);
    linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 1.5);
    dpp::KernelWorkspace ws;
    double plain = dpp::LogDetNormalizedKernel(a, 0.5);
    double with_ws = dpp::LogDetNormalizedKernel(a, 0.5, &ws);
    EXPECT_NEAR(with_ws, plain, 1e-12 * (1.0 + std::fabs(plain)));
  }
}

TEST(FusedLogDetTest, SingularKernelReportedByBothPaths) {
  linalg::Matrix collapsed(3, 3, 1.0 / 3.0);  // identical rows
  dpp::KernelWorkspace ws;
  EXPECT_TRUE(std::isinf(dpp::LogDetNormalizedKernel(collapsed, 0.5, &ws)));
  double ld = 0.0;
  linalg::Matrix grad;
  EXPECT_FALSE(dpp::LogDetAndGrad(collapsed, 0.5, &ws, &ld, &grad));
  EXPECT_TRUE(std::isinf(ld));
}

// --------------------------------------------------------- workspace reuse ---

TEST(MStepWorkspaceTest, DirtyWorkspaceGivesIdenticalResults) {
  core::TransitionUpdateOptions opts;
  opts.alpha = 1.5;

  prob::Rng rng(30);
  linalg::Matrix counts5 = RandomCounts(5, 31);
  linalg::Matrix init5 = rng.RandomStochasticMatrix(5, 5, 2.0);
  linalg::Matrix counts9 = RandomCounts(9, 32);
  linalg::Matrix init9 = rng.RandomStochasticMatrix(9, 9, 2.0);

  core::TransitionUpdateResult fresh;
  {
    core::TransitionUpdateWorkspace ws;
    core::UpdateTransitions(init5, counts5, opts, &ws, &fresh);
  }

  // Same k=5 update through a workspace that has visited k=9 in between.
  core::TransitionUpdateWorkspace ws;
  core::TransitionUpdateResult reused;
  core::UpdateTransitions(init5, counts5, opts, &ws, &reused);
  core::UpdateTransitions(init9, counts9, opts, &ws, &reused);
  core::UpdateTransitions(init5, counts5, opts, &ws, &reused);

  EXPECT_TRUE(reused.a == fresh.a);
  EXPECT_EQ(reused.objective, fresh.objective);
  EXPECT_EQ(reused.log_det, fresh.log_det);
  EXPECT_EQ(reused.iterations, fresh.iterations);
}

TEST(MStepWorkspaceTest, ConvenienceOverloadMatchesWorkspacePath) {
  prob::Rng rng(40);
  linalg::Matrix counts = RandomCounts(6, 41);
  linalg::Matrix init = rng.RandomStochasticMatrix(6, 6, 2.0);
  core::TransitionUpdateOptions opts;
  opts.alpha = 3.0;

  core::TransitionUpdateResult legacy =
      core::UpdateTransitions(init, counts, opts);
  core::TransitionUpdateWorkspace ws;
  core::TransitionUpdateResult with_ws;
  core::UpdateTransitions(init, counts, opts, &ws, &with_ws);
  EXPECT_TRUE(legacy.a == with_ws.a);
  EXPECT_EQ(legacy.objective, with_ws.objective);
}

// -------------------------------------------- projected-gradient overloads --

TEST(ProjectedGradientWorkspaceTest, MatchesCallbackOverload) {
  // Concave quadratic with a simplex-projected feasible set: both overloads
  // must walk the identical trajectory.
  prob::Rng rng(50);
  linalg::Matrix target = rng.RandomStochasticMatrix(3, 3, 0.7);
  linalg::Matrix init(3, 3, 1.0 / 3.0);

  optim::MatrixObjective objective = [&](const linalg::Matrix& a) {
    return -a.squared_distance(target);
  };
  optim::MatrixGradient gradient = [&](const linalg::Matrix& a,
                                       linalg::Matrix* g) {
    *g = (target - a) * 2.0;
    return true;
  };
  optim::MatrixValueGradient value_and_grad =
      [&](const linalg::Matrix& a, double* value, linalg::Matrix* g) {
        *value = -a.squared_distance(target);
        *g = (target - a) * 2.0;
        return true;
      };
  optim::MatrixProjection project = [](linalg::Matrix* a) {
    optim::ProjectRowsToSimplex(a);
  };

  optim::ProjectedGradientOptions options;
  optim::ProjectedGradientResult legacy =
      optim::ProjectedGradientAscent(init, objective, gradient, project,
                                     options);
  optim::ProjectedGradientWorkspace ws;
  optim::ProjectedGradientResult fused;
  optim::ProjectedGradientAscent(init, objective, value_and_grad, project,
                                 options, &ws, &fused);

  EXPECT_EQ(fused.objective, legacy.objective);
  EXPECT_EQ(fused.iterations, legacy.iterations);
  EXPECT_EQ(fused.converged, legacy.converged);
  EXPECT_TRUE(fused.argmax == legacy.argmax);
}

TEST(ProjectedGradientWorkspaceTest, ScratchSimplexProjectionIsBitwise) {
  prob::Rng rng(60);
  linalg::Matrix m(4, 7);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 7; ++j) m(i, j) = 2.0 * rng.Uniform() - 0.5;
  }
  linalg::Matrix plain = m;
  optim::ProjectRowsToSimplex(&plain);
  linalg::Matrix scratched = m;
  linalg::Vector scratch;
  optim::ProjectRowsToSimplex(&scratched, &scratch);
  EXPECT_TRUE(plain == scratched);
}

// ------------------------------------------------------ driver determinism ---

TEST(BatchMStepDriverTest, UnitResultsAreThreadCountInvariant) {
  const size_t num_units = 10;
  core::TransitionUpdateOptions opts;
  opts.alpha = 1.0;

  auto run = [&](int num_threads) {
    std::vector<double> objectives(num_units);
    core::BatchMStepDriver driver(core::BatchMStepOptions{num_threads});
    driver.Run(num_units, [&](core::TransitionUpdateWorkspace& ws,
                              size_t unit) {
      const size_t k = 4 + unit % 3;  // exercise workspace regrowth
      prob::Rng rng(100 + unit);
      linalg::Matrix counts = RandomCounts(k, 200 + unit);
      linalg::Matrix init = rng.RandomStochasticMatrix(k, k, 2.0);
      core::TransitionUpdateResult r;
      core::UpdateTransitions(init, counts, opts, &ws, &r);
      objectives[unit] = r.objective;
    });
    return objectives;
  };

  std::vector<double> one = run(1);
  for (int threads : {2, 4}) {
    std::vector<double> many = run(threads);
    ASSERT_EQ(many.size(), one.size());
    for (size_t u = 0; u < num_units; ++u) {
      EXPECT_EQ(many[u], one[u]) << "unit " << u << " with " << threads
                                 << " threads";
    }
  }
}

TEST(BatchMStepDriverTest, ReduceRunsInAscendingUnitOrder) {
  core::BatchMStepDriver driver(core::BatchMStepOptions{4});
  std::vector<size_t> reduce_order;
  driver.Run(
      8, [](core::TransitionUpdateWorkspace&, size_t) {},
      [&](size_t unit) { reduce_order.push_back(unit); });
  ASSERT_EQ(reduce_order.size(), 8u);
  for (size_t u = 0; u < reduce_order.size(); ++u) {
    EXPECT_EQ(reduce_order[u], u);
  }
}

hmm::Dataset<int> SmallCategoricalData(uint64_t seed) {
  prob::Rng rng(seed);
  hmm::HmmModel<int> truth(
      rng.DirichletSymmetric(3, 2.0), rng.RandomStochasticMatrix(3, 3, 0.8),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(3, 6, rng)));
  prob::Rng data_rng(seed + 1);
  return hmm::SampleDataset(truth, 20, 8, data_rng);
}

TEST(StateSelectionParallelTest, SweepIsBitwiseIdenticalAcrossThreadCounts) {
  hmm::Dataset<int> data = SmallCategoricalData(300);
  core::ModelFactory<int> factory = [](size_t k, prob::Rng& rng) {
    return hmm::HmmModel<int>(
        rng.DirichletSymmetric(k, 2.0),
        rng.RandomStochasticMatrix(k, k, 2.0),
        std::make_unique<prob::CategoricalEmission>(
            prob::CategoricalEmission::RandomInit(k, 6, rng)));
  };

  auto run = [&](int num_threads) {
    core::StateSelectionOptions opts;
    opts.min_states = 2;
    opts.max_states = 4;
    opts.alpha = 1.0;  // exercise the diversified fit path
    opts.em_iters = 4;
    opts.restarts = 2;
    opts.num_threads = num_threads;
    return core::SelectStateCount(data, factory, 6.0, opts);
  };

  core::StateSelectionResult one = run(1);
  for (int threads : {2, 4}) {
    core::StateSelectionResult many = run(threads);
    EXPECT_EQ(many.best_k, one.best_k);
    ASSERT_EQ(many.candidates.size(), one.candidates.size());
    for (size_t c = 0; c < one.candidates.size(); ++c) {
      EXPECT_EQ(many.candidates[c].log_likelihood,
                one.candidates[c].log_likelihood)
          << "k=" << one.candidates[c].k << " threads=" << threads;
      EXPECT_EQ(many.candidates[c].score, one.candidates[c].score);
    }
  }
}

TEST(EvaluateFoldsTest, FoldScoresAreThreadCountInvariant) {
  auto run = [&](int num_threads) {
    core::BatchMStepDriver driver(core::BatchMStepOptions{num_threads});
    return eval::EvaluateFolds(
        &driver, 7, [](size_t fold, core::TransitionUpdateWorkspace& ws) {
          // Real M-step work per fold so worker workspaces matter.
          const size_t k = 3 + fold % 2;
          prob::Rng rng(500 + fold);
          linalg::Matrix counts(k, k);
          for (size_t i = 0; i < k; ++i) {
            for (size_t j = 0; j < k; ++j) {
              counts(i, j) = 1.0 + 5.0 * rng.Uniform();
            }
          }
          core::TransitionUpdateOptions opts;
          opts.alpha = 2.0;
          core::TransitionUpdateResult r;
          core::UpdateTransitions(rng.RandomStochasticMatrix(k, k, 2.0),
                                  counts, opts, &ws, &r);
          return r.log_det;
        });
  };

  std::vector<double> one = run(1);
  ASSERT_EQ(one.size(), 7u);
  for (int threads : {2, 4}) {
    std::vector<double> many = run(threads);
    ASSERT_EQ(many.size(), one.size());
    for (size_t f = 0; f < one.size(); ++f) {
      EXPECT_EQ(many[f], one[f]) << "fold " << f;
    }
  }
}

}  // namespace
}  // namespace dhmm
