#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "dpp/esp.h"
#include "dpp/logdet.h"
#include "dpp/product_kernel.h"
#include "dpp/sampling.h"
#include "linalg/eigen_sym.h"
#include "linalg/lu.h"
#include "prob/rng.h"

namespace dhmm::dpp {
namespace {

linalg::Matrix RandomStochastic(size_t k, size_t d, uint64_t seed,
                                double conc = 2.0) {
  prob::Rng rng(seed);
  return rng.RandomStochasticMatrix(k, d, conc);
}

// ---------------------------------------------------------- ProductKernel ---

TEST(ProductKernelTest, DiagonalOfNormalizedKernelIsOne) {
  linalg::Matrix a = RandomStochastic(5, 5, 1);
  linalg::Matrix k = NormalizedKernel(a);
  for (size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(k(i, i), 1.0);
}

TEST(ProductKernelTest, SymmetricAndBounded) {
  linalg::Matrix a = RandomStochastic(6, 8, 2);
  linalg::Matrix k = NormalizedKernel(a);
  EXPECT_TRUE(k.IsSymmetric(1e-12));
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_GE(k(i, j), 0.0);
      EXPECT_LE(k(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(ProductKernelTest, RhoHalfIsBhattacharyyaCoefficient) {
  linalg::Matrix a{{0.5, 0.5}, {0.1, 0.9}};
  linalg::Matrix k = NormalizedKernel(a, 0.5);
  double bc = std::sqrt(0.5 * 0.1) + std::sqrt(0.5 * 0.9);
  EXPECT_NEAR(k(0, 1), bc, 1e-12);
}

TEST(ProductKernelTest, IdenticalRowsGiveUnitOffDiagonal) {
  linalg::Matrix a{{0.3, 0.7}, {0.3, 0.7}};
  linalg::Matrix k = NormalizedKernel(a);
  EXPECT_NEAR(k(0, 1), 1.0, 1e-12);
  // And the determinant of the kernel vanishes.
  EXPECT_NEAR(linalg::Determinant(k), 0.0, 1e-12);
}

TEST(ProductKernelTest, OrthogonalRowsGiveIdentityKernel) {
  linalg::Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  linalg::Matrix k = NormalizedKernel(a);
  // Disjoint supports: off-diagonal is (numerically) the floor -> ~0.
  EXPECT_LT(k(0, 1), 1e-5);
  EXPECT_NEAR(linalg::Determinant(k), 1.0, 1e-4);
}

TEST(ProductKernelTest, PositiveSemidefinite) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    linalg::Matrix a = RandomStochastic(5, 7, seed);
    linalg::SymmetricEigen eig(NormalizedKernel(a));
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_GE(eig.eigenvalues()[i], -1e-9) << "seed " << seed;
    }
  }
}

TEST(ProductKernelTest, ScaleInvarianceOfNormalizedKernel) {
  // The normalized kernel must not change when a row is rescaled.
  linalg::Matrix a{{0.2, 0.8}, {0.6, 0.4}};
  linalg::Matrix b = a;
  for (size_t j = 0; j < 2; ++j) b(0, j) *= 3.7;
  linalg::Matrix ka = NormalizedKernel(a);
  linalg::Matrix kb = NormalizedKernel(b);
  EXPECT_NEAR(ka(0, 1), kb(0, 1), 1e-12);
}

TEST(ProductKernelTest, UnnormalizedDiagonalIsRowPowerSum) {
  linalg::Matrix a{{0.25, 0.75}};
  linalg::Matrix k = ProductKernel(a, 0.5);
  EXPECT_NEAR(k(0, 0), 0.25 + 0.75, 1e-12);  // rho=0.5: sum of entries
  linalg::Matrix k2 = ProductKernel(a, 1.0);
  EXPECT_NEAR(k2(0, 0), 0.25 * 0.25 + 0.75 * 0.75, 1e-12);
}

// ----------------------------------------------------------------- LogDet ---

TEST(LogDetTest, MaximalForDisjointSupports) {
  linalg::Matrix diverse{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  // Identity kernel -> log det 0, the maximum for a correlation kernel.
  EXPECT_NEAR(LogDetNormalizedKernel(diverse), 0.0, 1e-4);
}

TEST(LogDetTest, NegInfForIdenticalRows) {
  linalg::Matrix collapsed{{0.5, 0.5}, {0.5, 0.5}};
  EXPECT_TRUE(std::isinf(LogDetNormalizedKernel(collapsed)));
}

TEST(LogDetTest, MoreDiverseRowsScoreHigher) {
  linalg::Matrix spread{{0.9, 0.05, 0.05}, {0.05, 0.9, 0.05},
                        {0.05, 0.05, 0.9}};
  linalg::Matrix bunched{{0.4, 0.3, 0.3}, {0.3, 0.4, 0.3}, {0.3, 0.3, 0.4}};
  EXPECT_GT(LogDetNormalizedKernel(spread), LogDetNormalizedKernel(bunched));
}

TEST(LogDetTest, AlwaysNonPositiveForCorrelationKernel) {
  // det of a correlation (unit-diagonal PSD) matrix is in [0, 1].
  for (uint64_t seed = 0; seed < 10; ++seed) {
    linalg::Matrix a = RandomStochastic(4, 6, seed + 40);
    double ld = LogDetNormalizedKernel(a);
    EXPECT_LE(ld, 1e-10) << "seed " << seed;
  }
}

// The critical correctness test: analytic gradient vs central finite
// differences, at generic (off-simplex-interior) points.
class GradLogDetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GradLogDetTest, MatchesFiniteDifferences) {
  const uint64_t seed = GetParam();
  const double rho = (seed % 2 == 0) ? 0.5 : 0.8;
  linalg::Matrix a = RandomStochastic(4, 5, seed, 3.0);
  // Move slightly off the simplex to exercise the normalization terms.
  prob::Rng rng(seed + 1000);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) *= 1.0 + 0.2 * rng.Uniform();
    }
  }
  linalg::Matrix grad;
  ASSERT_TRUE(GradLogDetNormalizedKernel(a, rho, &grad));
  const double h = 1e-6;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      linalg::Matrix ap = a, am = a;
      ap(i, j) += h;
      am(i, j) -= h;
      double fd = (LogDetNormalizedKernel(ap, rho) -
                   LogDetNormalizedKernel(am, rho)) /
                  (2.0 * h);
      EXPECT_NEAR(grad(i, j), fd, 1e-4 * (1.0 + std::fabs(fd)))
          << "entry (" << i << "," << j << "), rho " << rho;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradLogDetTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GradLogDetTest, FlooredEntriesGetZeroGradient) {
  linalg::Matrix a{{1.0 - 1e-13, 1e-13}, {0.3, 0.7}};
  linalg::Matrix grad;
  ASSERT_TRUE(GradLogDetNormalizedKernel(a, 0.5, &grad));
  EXPECT_DOUBLE_EQ(grad(0, 1), 0.0);
}

TEST(GradLogDetTest, FailsGracefullyOnSingularKernel) {
  linalg::Matrix a{{0.5, 0.5}, {0.5, 0.5}};
  linalg::Matrix grad;
  EXPECT_FALSE(GradLogDetNormalizedKernel(a, 0.5, &grad));
}

TEST(GradLogDetTest, PaperFormulaParallelToExactOnSimplexAfterCentering) {
  // On the simplex, the paper's Eq. 15 direction differs from the exact
  // gradient by a positive scale (2x) and a per-entry constant; Euclidean
  // simplex projection is invariant to uniform row shifts, so the projected
  // ascent directions coincide. Verify: exact = 2 * paper - 1 elementwise.
  linalg::Matrix a = RandomStochastic(4, 4, 77, 3.0);
  linalg::Matrix exact, paper;
  ASSERT_TRUE(GradLogDetNormalizedKernel(a, 0.5, &exact));
  ASSERT_TRUE(PaperGradLogDet(a, &paper));
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(exact(i, j), 2.0 * paper(i, j) - 1.0,
                  1e-8 * (1.0 + std::fabs(exact(i, j))));
    }
  }
}

TEST(GradLogDetTest, GradientPushesRowsApart) {
  // Two nearly identical rows: ascent along the gradient must increase the
  // diversity objective.
  linalg::Matrix a{{0.52, 0.48}, {0.48, 0.52}};
  linalg::Matrix grad;
  ASSERT_TRUE(GradLogDetNormalizedKernel(a, 0.5, &grad));
  double before = LogDetNormalizedKernel(a);
  linalg::Matrix stepped = a + grad * 1e-4;
  EXPECT_GT(LogDetNormalizedKernel(stepped), before);
}

// -------------------------------------------------------------------- ESP ---

TEST(EspTest, KnownSmallCases) {
  linalg::Vector v{1.0, 2.0, 3.0};
  linalg::Vector e = ElementarySymmetric(v, 3);
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_DOUBLE_EQ(e[1], 6.0);    // 1+2+3
  EXPECT_DOUBLE_EQ(e[2], 11.0);   // 2+3+6
  EXPECT_DOUBLE_EQ(e[3], 6.0);    // 1*2*3
}

TEST(EspTest, TopCoefficientIsProduct) {
  linalg::Vector v{0.5, 1.5, 2.0, 4.0};
  linalg::Vector e = ElementarySymmetric(v, 4);
  EXPECT_NEAR(e[4], 0.5 * 1.5 * 2.0 * 4.0, 1e-12);
}

TEST(EspTest, MatchesDeterminantIdentity) {
  // det(I + L) = sum_k e_k(lambda).
  prob::Rng rng(30);
  linalg::Matrix g(4, 4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 4; ++j) g(i, j) = rng.Gaussian();
  linalg::Matrix l = g.MatMul(g.Transposed());
  linalg::SymmetricEigen eig(l);
  linalg::Vector lam = eig.eigenvalues();
  for (size_t i = 0; i < 4; ++i) lam[i] = std::max(lam[i], 0.0);
  linalg::Vector e = ElementarySymmetric(lam, 4);
  double sum = 0.0;
  for (size_t k = 0; k <= 4; ++k) sum += e[k];
  EXPECT_NEAR(sum, linalg::Determinant(l + linalg::Matrix::Identity(4)),
              1e-6 * (1.0 + sum));
}

TEST(EspTest, TableLastColumnMatchesVectorVersion) {
  linalg::Vector v{0.3, 1.2, 0.7, 2.2, 0.9};
  linalg::Matrix table = ElementarySymmetricTable(v, 3);
  linalg::Vector e = ElementarySymmetric(v, 3);
  for (size_t k = 0; k <= 3; ++k) {
    EXPECT_NEAR(table(k, 5), e[k], 1e-12);
  }
  // Prefix property: E(1, n) = sum of first n values.
  EXPECT_NEAR(table(1, 2), 1.5, 1e-12);
}

// --------------------------------------------------------------- Sampling ---

TEST(DppSamplingTest, KDppHasExactCardinality) {
  prob::Rng rng(31);
  linalg::Matrix g(6, 6);
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 6; ++j) g(i, j) = rng.Gaussian();
  linalg::Matrix l = g.MatMul(g.Transposed());
  for (size_t k = 1; k <= 4; ++k) {
    for (int trial = 0; trial < 10; ++trial) {
      auto subset = SampleKDpp(l, k, rng);
      EXPECT_EQ(subset.size(), k);
      // Distinct, sorted items.
      for (size_t i = 1; i < subset.size(); ++i) {
        EXPECT_LT(subset[i - 1], subset[i]);
      }
    }
  }
}

TEST(DppSamplingTest, SampleDppItemsInRange) {
  prob::Rng rng(32);
  linalg::Matrix l = linalg::Matrix::Identity(5) * 2.0;
  for (int trial = 0; trial < 20; ++trial) {
    auto subset = SampleDpp(l, rng);
    for (size_t item : subset) EXPECT_LT(item, 5u);
  }
}

TEST(DppSamplingTest, IdentityKernelMarginals) {
  // For L = c*I the items are independent with inclusion prob c/(1+c).
  prob::Rng rng(33);
  linalg::Matrix l = linalg::Matrix::Identity(4) * 3.0;
  int count = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    count += static_cast<int>(SampleDpp(l, rng).size());
  }
  double rate = count / (4.0 * trials);
  EXPECT_NEAR(rate, 0.75, 0.03);
}

TEST(DppSamplingTest, RepulsionBeatsIndependentSampling) {
  // Two highly similar items (0,1) and one dissimilar (2): a 2-DPP should
  // pick {0,2} or {1,2} far more often than {0,1}.
  linalg::Matrix l{{1.0, 0.98, 0.05}, {0.98, 1.0, 0.05}, {0.05, 0.05, 1.0}};
  prob::Rng rng(34);
  std::map<std::pair<size_t, size_t>, int> counts;
  for (int t = 0; t < 2000; ++t) {
    auto s = SampleKDpp(l, 2, rng);
    ++counts[{s[0], s[1]}];
  }
  int similar_pair = counts[{0, 1}];
  int diverse_pairs = counts[{0, 2}] + counts[{1, 2}];
  EXPECT_GT(diverse_pairs, 20 * similar_pair);
}

TEST(DppSamplingTest, KDppSampleFrequenciesMatchDensity) {
  // Exhaustive check on a 4-item ground set with k=2: empirical frequencies
  // track det(L_Y)/e_2.
  prob::Rng rng(35);
  linalg::Matrix g(4, 3);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 3; ++j) g(i, j) = rng.Gaussian();
  linalg::Matrix l = g.MatMul(g.Transposed());
  for (size_t i = 0; i < 4; ++i) l(i, i) += 0.3;

  std::map<std::pair<size_t, size_t>, int> counts;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    auto s = SampleKDpp(l, 2, rng);
    ++counts[{s[0], s[1]}];
  }
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) {
      double expected = std::exp(KDppLogProb(l, {i, j}));
      double observed = counts[{i, j}] / static_cast<double>(trials);
      EXPECT_NEAR(observed, expected, 0.02)
          << "pair (" << i << "," << j << ")";
    }
  }
}

TEST(DppSamplingTest, KDppLogProbsNormalize) {
  prob::Rng rng(36);
  linalg::Matrix g(5, 4);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 4; ++j) g(i, j) = rng.Gaussian();
  linalg::Matrix l = g.MatMul(g.Transposed());
  for (size_t i = 0; i < 5; ++i) l(i, i) += 0.2;
  double total = 0.0;
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = i + 1; j < 5; ++j)
      total += std::exp(KDppLogProb(l, {i, j}));
  EXPECT_NEAR(total, 1.0, 1e-6);
}

}  // namespace
}  // namespace dhmm::dpp
