#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "prob/rng.h"

namespace dhmm::linalg {
namespace {

// ---------------------------------------------------------------- Vector ---

TEST(VectorTest, ConstructionAndAccess) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  v[1] = 5.0;
  EXPECT_DOUBLE_EQ(v[1], 5.0);
}

TEST(VectorTest, Reductions) {
  Vector v{3.0, -4.0, 1.0};
  EXPECT_DOUBLE_EQ(v.sum(), 0.0);
  EXPECT_DOUBLE_EQ(v.norm(), std::sqrt(26.0));
  EXPECT_DOUBLE_EQ(v.max(), 3.0);
  EXPECT_DOUBLE_EQ(v.min(), -4.0);
  EXPECT_EQ(v.argmax(), 0u);
}

TEST(VectorTest, DotAndArithmetic) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
  Vector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  Vector d = b - a;
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  Vector e = 2.0 * a;
  EXPECT_DOUBLE_EQ(e[1], 4.0);
}

TEST(VectorTest, NormalizeToSimplex) {
  Vector v{1.0, 3.0};
  v.NormalizeToSimplex();
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

// ---------------------------------------------------------------- Matrix ---

TEST(MatrixTest, InitializerListAndIdentity) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(MatrixTest, RowColSetters) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1.0, 2.0, 3.0});
  m.SetCol(2, Vector{9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 8.0);
  Vector r = m.Row(0);
  EXPECT_DOUBLE_EQ(r[2], 9.0);
  Vector c = m.Col(2);
  EXPECT_DOUBLE_EQ(c[1], 8.0);
}

TEST(MatrixTest, MatMulKnownProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatMulRectangular) {
  Matrix a(2, 3, 1.0);
  Matrix b(3, 4, 2.0);
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_DOUBLE_EQ(c(1, 3), 6.0);
}

TEST(MatrixTest, MatVec) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Vector v = a.MatVec(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(MatrixTest, Transpose) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, RowStochasticChecks) {
  Matrix good{{0.2, 0.8}, {0.5, 0.5}};
  EXPECT_TRUE(good.IsRowStochastic());
  Matrix bad{{0.2, 0.9}, {0.5, 0.5}};
  EXPECT_FALSE(bad.IsRowStochastic());
  Matrix negative{{1.2, -0.2}, {0.5, 0.5}};
  EXPECT_FALSE(negative.IsRowStochastic());
}

TEST(MatrixTest, NormalizeRowsHandlesZeroRow) {
  Matrix m(2, 4);
  m(0, 1) = 2.0;
  m.NormalizeRows();
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
  // Zero row becomes uniform.
  EXPECT_DOUBLE_EQ(m(1, 0), 0.25);
  EXPECT_TRUE(m.IsRowStochastic());
}

TEST(MatrixTest, NormsAndDistance) {
  Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  Matrix b(2, 2);
  EXPECT_DOUBLE_EQ(a.squared_distance(b), 25.0);
  EXPECT_DOUBLE_EQ(a.sum(), 7.0);
}

TEST(MatrixTest, SymmetryPredicate) {
  Matrix s{{1.0, 2.0}, {2.0, 3.0}};
  EXPECT_TRUE(s.IsSymmetric());
  Matrix ns{{1.0, 2.0}, {2.1, 3.0}};
  EXPECT_FALSE(ns.IsSymmetric());
}

// -------------------------------------------------------------------- LU ---

TEST(LuTest, DeterminantKnownValues) {
  EXPECT_DOUBLE_EQ(Determinant(Matrix{{2.0}}), 2.0);
  EXPECT_DOUBLE_EQ(Determinant(Matrix{{1.0, 2.0}, {3.0, 4.0}}), -2.0);
  EXPECT_NEAR(Determinant(Matrix{{2.0, 0.0, 1.0},
                                 {1.0, 3.0, 2.0},
                                 {1.0, 1.0, 4.0}}),
              18.0, 1e-12);
  EXPECT_DOUBLE_EQ(Determinant(Matrix::Identity(5)), 1.0);
}

TEST(LuTest, SingularMatrixDetected) {
  Matrix m{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(m);
  EXPECT_TRUE(lu.IsSingular());
  EXPECT_DOUBLE_EQ(lu.Determinant(), 0.0);
  EXPECT_EQ(lu.DeterminantSign(), 0);
  EXPECT_TRUE(std::isinf(lu.LogAbsDeterminant()));
}

TEST(LuTest, LogAbsDetMatchesLogOfDet) {
  Matrix m{{4.0, 1.0}, {2.0, 3.0}};
  LuDecomposition lu(m);
  EXPECT_NEAR(lu.LogAbsDeterminant(), std::log(10.0), 1e-12);
  EXPECT_EQ(lu.DeterminantSign(), 1);
}

TEST(LuTest, DeterminantSignNegative) {
  Matrix m{{0.0, 1.0}, {1.0, 0.0}};  // permutation, det = -1
  LuDecomposition lu(m);
  EXPECT_EQ(lu.DeterminantSign(), -1);
  EXPECT_NEAR(lu.Determinant(), -1.0, 1e-15);
}

TEST(LuTest, SolveRecoversSolution) {
  Matrix a{{3.0, 1.0}, {1.0, 2.0}};
  Vector x_true{1.0, -2.0};
  Vector b = a.MatVec(x_true);
  Vector x = LuDecomposition(a).Solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  prob::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = 2 + trial % 6;
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = rng.Gaussian();
      a(i, i) += static_cast<double>(n);  // diagonally dominant: nonsingular
    }
    Matrix inv = Inverse(a);
    Matrix prod = a.MatMul(inv);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
      }
    }
  }
}

TEST(LuTest, MatrixSolveMultipleRhs) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Matrix b{{1.0, 0.0}, {0.0, 1.0}};
  Matrix x = LuDecomposition(a).Solve(b);
  Matrix check = a.MatMul(x);
  EXPECT_NEAR(check(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(check(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(check(1, 1), 1.0, 1e-12);
}

TEST(LuTest, FactorizeIntoReusesDecomposition) {
  prob::Rng rng(7);
  LuDecomposition reused;
  for (int trial = 0; trial < 6; ++trial) {
    size_t n = 2 + trial % 4;  // shrink and regrow the factor buffers
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = rng.Gaussian();
      a(i, i) += static_cast<double>(n);
    }
    reused.FactorizeInto(a);
    LuDecomposition fresh(a);
    EXPECT_EQ(reused.Determinant(), fresh.Determinant()) << "trial " << trial;
    EXPECT_EQ(reused.LogAbsDeterminant(), fresh.LogAbsDeterminant());
    EXPECT_EQ(reused.IsSingular(), fresh.IsSingular());
  }
}

TEST(LuTest, SolveIntoMatchesSolve) {
  Matrix a{{2.0, 1.0, 0.5}, {1.0, 3.0, 0.25}, {0.5, 0.25, 4.0}};
  LuDecomposition lu(a);

  Vector b{1.0, -2.0, 3.0};
  Vector x = lu.Solve(b);
  Vector x_into;
  lu.SolveInto(b, &x_into);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(x_into[i], x[i]);

  Matrix rhs{{1.0, 0.0}, {2.0, 1.0}, {0.0, -1.0}};
  Matrix y = lu.Solve(rhs);
  Matrix y_into;
  lu.SolveInto(rhs, &y_into);
  EXPECT_TRUE(y_into == y);
}

TEST(LuTest, InverseIntoMatchesInverse) {
  Matrix a{{3.0, 1.0}, {1.0, 2.0}};
  LuDecomposition lu(a);
  Matrix inv = lu.Inverse();
  Matrix inv_into;
  lu.InverseInto(&inv_into);
  EXPECT_TRUE(inv_into == inv);
}

// Property sweep: det(AB) = det(A)det(B) on random matrices.
class LuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LuPropertyTest, DetIsMultiplicative) {
  prob::Rng rng(static_cast<uint64_t>(GetParam()));
  size_t n = 2 + static_cast<size_t>(GetParam()) % 5;
  Matrix a(n, n), b(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = rng.Gaussian();
      b(i, j) = rng.Gaussian();
    }
  }
  double lhs = Determinant(a.MatMul(b));
  double rhs = Determinant(a) * Determinant(b);
  EXPECT_NEAR(lhs, rhs, 1e-8 * (1.0 + std::fabs(rhs)));
}

TEST_P(LuPropertyTest, DetOfTransposeEqual) {
  prob::Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  size_t n = 2 + static_cast<size_t>(GetParam()) % 5;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.Gaussian();
  EXPECT_NEAR(Determinant(a), Determinant(a.Transposed()),
              1e-9 * (1.0 + std::fabs(Determinant(a))));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LuPropertyTest,
                         ::testing::Range(0, 12));

// -------------------------------------------------------------- Cholesky ---

TEST(CholeskyTest, FactorsSpdMatrix) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  CholeskyDecomposition chol(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol.L();
  Matrix rec = l.MatMul(l.Transposed());
  EXPECT_NEAR(rec(0, 0), 4.0, 1e-12);
  EXPECT_NEAR(rec(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(rec(1, 1), 3.0, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyDecomposition(a).ok());
}

TEST(CholeskyTest, LogDetMatchesLu) {
  prob::Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    size_t n = 2 + trial % 5;
    Matrix g(n, n);
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) g(i, j) = rng.Gaussian();
    Matrix spd = g.MatMul(g.Transposed());
    for (size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
    CholeskyDecomposition chol(spd);
    ASSERT_TRUE(chol.ok());
    EXPECT_NEAR(chol.LogDeterminant(), LogAbsDeterminant(spd), 1e-8);
  }
}

TEST(CholeskyTest, SolveMatchesLuSolve) {
  Matrix a{{5.0, 1.0, 0.5}, {1.0, 4.0, 1.0}, {0.5, 1.0, 3.0}};
  Vector b{1.0, 2.0, 3.0};
  CholeskyDecomposition chol(a);
  ASSERT_TRUE(chol.ok());
  Vector x1 = chol.Solve(b);
  Vector x2 = LuDecomposition(a).Solve(b);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

// -------------------------------------------------------- SymmetricEigen ---

TEST(EigenSymTest, DiagonalMatrix) {
  Matrix d = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  SymmetricEigen eig(d);
  ASSERT_TRUE(eig.converged());
  EXPECT_NEAR(eig.eigenvalues()[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues()[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues()[2], 3.0, 1e-12);
}

TEST(EigenSymTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  SymmetricEigen eig(Matrix{{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_NEAR(eig.eigenvalues()[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues()[1], 3.0, 1e-10);
}

TEST(EigenSymTest, ReconstructionAndOrthonormality) {
  prob::Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    size_t n = 2 + trial;
    Matrix g(n, n);
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) g(i, j) = rng.Gaussian();
    Matrix s = g + g.Transposed();
    SymmetricEigen eig(s);
    ASSERT_TRUE(eig.converged());
    const Matrix& v = eig.eigenvectors();
    // V^T V = I.
    Matrix vtv = v.Transposed().MatMul(v);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-8);
      }
    }
    // V diag(w) V^T = S.
    Matrix rec = v.MatMul(Matrix::Diagonal(eig.eigenvalues()))
                     .MatMul(v.Transposed());
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(rec(i, j), s(i, j), 1e-7);
      }
    }
  }
}

TEST(EigenSymTest, TraceAndDetInvariants) {
  Matrix s{{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  SymmetricEigen eig(s);
  const Vector& w = eig.eigenvalues();
  EXPECT_NEAR(w[0] + w[1] + w[2], 9.0, 1e-9);              // trace
  EXPECT_NEAR(w[0] * w[1] * w[2], Determinant(s), 1e-8);   // det
}

TEST(EigenSymTest, PsdKernelHasNonNegativeEigenvalues) {
  prob::Rng rng(9);
  Matrix g(4, 6);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 6; ++j) g(i, j) = rng.Gaussian();
  Matrix psd = g.MatMul(g.Transposed());
  SymmetricEigen eig(psd);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_GE(eig.eigenvalues()[i], -1e-9);
  }
}

}  // namespace
}  // namespace dhmm::linalg
