// Fidelity tests tying the implementation to the paper's equations, one by
// one. Each test names the equation or claim it certifies.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/transition_update.h"
#include "dpp/esp.h"
#include "dpp/logdet.h"
#include "dpp/product_kernel.h"
#include "hmm/inference.h"
#include "hmm/sampler.h"
#include "hmm/trainer.h"
#include "prob/categorical_emission.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"

namespace dhmm {
namespace {

// §1 intro claim: if all rows of A equal a vector a, the joint factorizes as
// P(X,Y) = P(x1|pi) prod_t P(x_t|a) P(y_t|x_t) — i.e. the HMM is a static
// mixture. Consequence: the marginal P(Y) equals a product of per-frame
// mixture densities with weights a (after the first frame, pi for the first).
TEST(PaperEquationsTest, IntroStaticMixtureFactorization) {
  prob::Rng rng(1);
  const size_t k = 3, v = 5, t_len = 6;
  linalg::Vector pi = rng.DirichletSymmetric(k, 1.5);
  linalg::Vector a_row = rng.DirichletSymmetric(k, 1.5);
  linalg::Matrix a(k, k);
  for (size_t i = 0; i < k; ++i) a.SetRow(i, a_row);
  prob::CategoricalEmission emission =
      prob::CategoricalEmission::RandomInit(k, v, rng);

  std::vector<int> obs;
  for (size_t t = 0; t < t_len; ++t) {
    obs.push_back(static_cast<int>(rng.UniformInt(v)));
  }
  linalg::Matrix log_b = emission.LogProbTable(obs);
  double chain_ll = hmm::LogLikelihood(pi, a, log_b);

  // Product of independent mixture densities.
  double product_ll = 0.0;
  for (size_t t = 0; t < t_len; ++t) {
    const linalg::Vector& weights = t == 0 ? pi : a_row;
    double frame = 0.0;
    for (size_t i = 0; i < k; ++i) {
      frame += weights[i] * std::exp(log_b(t, i));
    }
    product_ll += std::log(frame);
  }
  EXPECT_NEAR(chain_ll, product_ll, 1e-10);
}

// Eq. 5: the normalized correlation kernel entry for two explicit rows.
TEST(PaperEquationsTest, Eq5KernelEntryByHand) {
  linalg::Matrix a{{0.2, 0.3, 0.5}, {0.6, 0.1, 0.3}};
  const double rho = 0.5;
  double k01 = std::pow(0.2 * 0.6, rho) + std::pow(0.3 * 0.1, rho) +
               std::pow(0.5 * 0.3, rho);
  double k00 = std::pow(0.2 * 0.2, rho) + std::pow(0.3 * 0.3, rho) +
               std::pow(0.5 * 0.5, rho);
  double k11 = std::pow(0.6 * 0.6, rho) + std::pow(0.1 * 0.1, rho) +
               std::pow(0.3 * 0.3, rho);
  linalg::Matrix kernel = dpp::NormalizedKernel(a, rho);
  EXPECT_NEAR(kernel(0, 1), k01 / std::sqrt(k00 * k11), 1e-12);
  EXPECT_DOUBLE_EQ(kernel(0, 0), 1.0);
}

// Eq. 1: k-DPP normalization is the k-th elementary symmetric polynomial of
// the kernel eigenvalues (checked via the determinant expansion identity
// on 2x2 where e_2 = det and e_1 = trace).
TEST(PaperEquationsTest, Eq1KDppNormalizer) {
  linalg::Vector lambda{2.0, 3.0};
  linalg::Vector e = dpp::ElementarySymmetric(lambda, 2);
  EXPECT_DOUBLE_EQ(e[1], 5.0);  // trace
  EXPECT_DOUBLE_EQ(e[2], 6.0);  // determinant
}

// Paper's pi M-step: pi_i = sum_n q(X_n1 = i) / N. Verified by running one
// EM iteration and comparing against hand-accumulated posteriors.
TEST(PaperEquationsTest, PiUpdateIsAveragedFirstFramePosterior) {
  prob::Rng rng(2);
  const size_t k = 3;
  hmm::HmmModel<int> model(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(k, 6, rng)));
  hmm::Dataset<int> data = hmm::SampleDataset(model, 15, 7, rng);

  // Hand-accumulate gamma(0, .) under the *initial* parameters.
  linalg::Vector expected(k);
  for (const auto& seq : data) {
    auto fb = hmm::ForwardBackward(model.pi, model.a,
                                   model.emission->LogProbTable(seq.obs));
    for (size_t i = 0; i < k; ++i) expected[i] += fb.gamma(0, i);
  }
  expected.NormalizeToSimplex();

  hmm::EmOptions em;
  em.max_iters = 1;
  hmm::FitEm(&model, data, em);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(model.pi[i], expected[i], 1e-12);
  }
}

// Eqs. 11-12: the Gaussian emission updates are the posterior-weighted mean
// and variance.
TEST(PaperEquationsTest, Eq11Eq12GaussianUpdates) {
  prob::GaussianEmission e(linalg::Vector{0.0}, linalg::Vector{1.0});
  // Frames y with weights q (all for the single state).
  std::vector<std::pair<double, double>> frames = {
      {1.0, 0.5}, {2.0, 1.5}, {4.0, 1.0}};
  e.BeginAccumulate();
  double wsum = 0.0, ysum = 0.0;
  for (auto [y, q] : frames) {
    e.Accumulate(y, linalg::Vector{q});
    wsum += q;
    ysum += q * y;
  }
  e.FinishAccumulate();
  double mu = ysum / wsum;  // Eq. 11
  double var = 0.0;         // Eq. 12
  for (auto [y, q] : frames) var += q * (y - mu) * (y - mu);
  var /= wsum;
  EXPECT_NEAR(e.mu()[0], mu, 1e-12);
  EXPECT_NEAR(e.sigma()[0], std::sqrt(var), 1e-12);
}

// Eq. 14/16 (alpha = 0): the transition M-step reduces to normalized
// expected counts A_ij = xi_ij / sum_j xi_ij.
TEST(PaperEquationsTest, Eq16TransitionMlUpdate) {
  prob::Rng rng(3);
  const size_t k = 3;
  hmm::HmmModel<int> model(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(k, 6, rng)));
  hmm::Dataset<int> data = hmm::SampleDataset(model, 12, 9, rng);

  linalg::Matrix xi(k, k);
  for (const auto& seq : data) {
    auto fb = hmm::ForwardBackward(model.pi, model.a,
                                   model.emission->LogProbTable(seq.obs));
    xi += fb.xi_sum;
  }
  linalg::Matrix expected = xi;
  expected.NormalizeRows();

  hmm::EmOptions em;
  em.max_iters = 1;
  hmm::FitEm(&model, data, em);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(model.a(i, j), expected(i, j), 1e-12);
    }
  }
}

// Eq. 15's diversity gradient direction: at an interior point with two rows
// nearly identical, the gradient must push the off-diagonal overlap down —
// i.e. ascent increases log det (already tested) AND the paper formula and
// the exact formula agree after per-row centering (projection equivalence).
TEST(PaperEquationsTest, Eq15DirectionMatchesExactAfterCentering) {
  prob::Rng rng(4);
  linalg::Matrix a = rng.RandomStochasticMatrix(4, 4, 2.5);
  linalg::Matrix exact, paper;
  ASSERT_TRUE(dpp::GradLogDetNormalizedKernel(a, 0.5, &exact));
  ASSERT_TRUE(dpp::PaperGradLogDet(a, &paper));
  for (size_t i = 0; i < 4; ++i) {
    // Center each row of both gradients; centered directions must be
    // positively proportional (factor 2).
    double mean_e = 0.0, mean_p = 0.0;
    for (size_t j = 0; j < 4; ++j) {
      mean_e += exact(i, j) / 4.0;
      mean_p += paper(i, j) / 4.0;
    }
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(exact(i, j) - mean_e, 2.0 * (paper(i, j) - mean_p),
                  1e-9 * (1.0 + std::fabs(exact(i, j))));
    }
  }
}

// Eq. 18: the supervised gradient's tether term is -2 alpha_A (A - A0),
// verified through the objective's finite differences.
TEST(PaperEquationsTest, Eq18TetherGradient) {
  prob::Rng rng(5);
  linalg::Matrix a0 = rng.RandomStochasticMatrix(3, 3, 2.0);
  linalg::Matrix a = rng.RandomStochasticMatrix(3, 3, 2.0);
  linalg::Matrix counts(3, 3, 1.0);

  core::TransitionUpdateOptions opts;
  opts.alpha = 0.0;  // isolate the tether term plus counts
  opts.tether = &a0;
  opts.tether_weight = 7.0;

  const double h = 1e-6;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      linalg::Matrix ap = a, am = a;
      ap(i, j) += h;
      am(i, j) -= h;
      double fd = (core::TransitionObjective(ap, counts, opts) -
                   core::TransitionObjective(am, counts, opts)) /
                  (2.0 * h);
      double analytic =
          counts(i, j) / a(i, j) - 2.0 * 7.0 * (a(i, j) - a0(i, j));
      EXPECT_NEAR(fd, analytic, 1e-4 * (1.0 + std::fabs(analytic)));
    }
  }
}

// §3.5.3 convergence claim: the MAP objective sequence produced by the
// diversified EM is monotonically non-decreasing (already covered for the
// trainer; here we assert the inner Algorithm-1 objective never decreases
// relative to its own start across a spread of alphas).
TEST(PaperEquationsTest, Algorithm1NeverDecreasesObjective) {
  prob::Rng rng(6);
  for (double alpha : {0.1, 1.0, 10.0, 100.0}) {
    linalg::Matrix counts(4, 4);
    for (size_t i = 0; i < 4; ++i)
      for (size_t j = 0; j < 4; ++j) counts(i, j) = 1.0 + 20.0 * rng.Uniform();
    linalg::Matrix init = rng.RandomStochasticMatrix(4, 4, 2.0);
    core::TransitionUpdateOptions opts;
    opts.alpha = alpha;
    double before = core::TransitionObjective(init, counts, opts);
    core::TransitionUpdateResult r =
        core::UpdateTransitions(init, counts, opts);
    EXPECT_GE(r.objective, before - 1e-9) << "alpha " << alpha;
  }
}

}  // namespace
}  // namespace dhmm
