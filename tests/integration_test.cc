// End-to-end reproductions of the paper's experimental *shapes* at reduced
// scale: each test runs a miniature version of one experiment and checks the
// qualitative result the paper reports.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/dhmm_trainer.h"
#include "core/supervised_diversified.h"
#include "data/ocr.h"
#include "data/pos_corpus.h"
#include "data/toy.h"
#include "dpp/logdet.h"
#include "eval/crossval.h"
#include "eval/diversity.h"
#include "eval/metrics.h"
#include "hmm/sampler.h"
#include "hmm/trainer.h"

namespace dhmm {
namespace {

using eval::LabelSequences;

LabelSequences GoldLabels(const hmm::Dataset<double>& data) {
  LabelSequences out;
  for (const auto& seq : data) out.push_back(seq.labels);
  return out;
}

// ----------------------------------------------------- Toy (Table 1 shape) ---

struct ToyRun {
  double hmm_accuracy = 0.0;
  double dhmm_accuracy = 0.0;
  double hmm_diversity = 0.0;
  double dhmm_diversity = 0.0;
};

ToyRun RunToyComparison(double sigma, uint64_t seed, double alpha) {
  prob::Rng data_rng(seed);
  hmm::Dataset<double> data = data::GenerateToyDataset(sigma, 150, 6, data_rng);
  LabelSequences gold = GoldLabels(data);

  prob::Rng init_rng(seed + 1);
  hmm::HmmModel<double> base = data::ToyRandomInit(init_rng);
  hmm::HmmModel<double> diver = base;

  hmm::EmOptions em;
  em.max_iters = 40;
  hmm::FitEm(&base, data, em);

  core::DiversifiedEmOptions opts;
  opts.alpha = alpha;
  opts.max_iters = 40;
  core::FitDiversifiedHmm(&diver, data, opts);

  ToyRun run;
  run.hmm_accuracy =
      eval::OneToOneAccuracy(hmm::DecodeDataset(base, data), gold, 5).accuracy;
  run.dhmm_accuracy =
      eval::OneToOneAccuracy(hmm::DecodeDataset(diver, data), gold, 5)
          .accuracy;
  run.hmm_diversity = eval::AveragePairwiseDiversity(base.a);
  run.dhmm_diversity = eval::AveragePairwiseDiversity(diver.a);
  return run;
}

TEST(ToyIntegrationTest, DiversityOrderingWithFlatEmissions) {
  // Fig. 3 shape at one flat-emission point: diversity(dHMM) > diversity(HMM)
  // on average across seeds.
  double dhmm_total = 0.0, hmm_total = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    ToyRun run = RunToyComparison(/*sigma=*/1.5, 100 + seed, /*alpha=*/1.0);
    dhmm_total += run.dhmm_diversity;
    hmm_total += run.hmm_diversity;
  }
  EXPECT_GT(dhmm_total, hmm_total);
}

TEST(ToyIntegrationTest, DhmmAccuracyCompetitiveAtLowSigma) {
  // With well-separated emissions both models label well and dHMM does not
  // hurt (the left side of Fig. 5).
  ToyRun run = RunToyComparison(/*sigma=*/0.025, 200, /*alpha=*/1.0);
  EXPECT_GT(run.dhmm_accuracy, 0.6);
  EXPECT_GT(run.dhmm_accuracy, run.hmm_accuracy - 0.1);
}

TEST(ToyIntegrationTest, DhmmIdentifiesMoreStatesWithFlatEmissions) {
  // Fig. 4/5 shape: with flat emissions the HMM concentrates mass on few
  // states; the dHMM keeps more states effective (averaged over seeds).
  int dhmm_states_total = 0, hmm_states_total = 0;
  const double threshold = 25.0;  // sigma_F scaled to 150*6=900 frames
  for (uint64_t seed = 0; seed < 3; ++seed) {
    prob::Rng data_rng(300 + seed);
    hmm::Dataset<double> data =
        data::GenerateToyDataset(2.825, 150, 6, data_rng);
    prob::Rng init_rng(400 + seed);
    hmm::HmmModel<double> base = data::ToyRandomInit(init_rng);
    hmm::HmmModel<double> diver = base;
    hmm::EmOptions em;
    em.max_iters = 30;
    hmm::FitEm(&base, data, em);
    core::DiversifiedEmOptions opts;
    opts.alpha = 1.0;
    opts.max_iters = 30;
    core::FitDiversifiedHmm(&diver, data, opts);
    hmm_states_total += eval::CountEffectiveStates(
        eval::StateHistogram(hmm::DecodeDataset(base, data), 5), threshold);
    dhmm_states_total += eval::CountEffectiveStates(
        eval::StateHistogram(hmm::DecodeDataset(diver, data), 5), threshold);
  }
  EXPECT_GE(dhmm_states_total, hmm_states_total);
}

// ------------------------------------------------------ PoS (Fig. 7 shape) ---

TEST(PosIntegrationTest, DiversityPriorHelpsUnsupervisedTagging) {
  data::PosCorpusOptions copts;
  copts.num_sentences = 250;
  copts.vocab_size = 400;
  copts.mean_length = 12.0;
  copts.max_length = 30;
  copts.seed = 21;
  data::PosCorpus corpus = GeneratePosCorpus(copts);
  LabelSequences gold;
  for (const auto& s : corpus.sentences) gold.push_back(s.labels);

  prob::Rng init_rng(22);
  auto make_init = [&]() {
    return hmm::HmmModel<int>(
        init_rng.DirichletSymmetric(data::kNumPosTags, 1.0),
        init_rng.RandomStochasticMatrix(data::kNumPosTags, data::kNumPosTags,
                                        1.0),
        std::make_unique<prob::CategoricalEmission>(
            prob::CategoricalEmission::RandomInit(
                data::kNumPosTags, copts.vocab_size, init_rng)));
  };
  hmm::HmmModel<int> base = make_init();
  hmm::HmmModel<int> diver = base;

  hmm::EmOptions em;
  em.max_iters = 25;
  hmm::FitEm(&base, corpus.sentences, em);

  core::DiversifiedEmOptions opts;
  opts.alpha = 100.0;  // the paper's best PoS setting
  opts.max_iters = 25;
  core::FitDiversifiedHmm(&diver, corpus.sentences, opts);

  double acc_base =
      eval::OneToOneAccuracy(hmm::DecodeDataset(base, corpus.sentences), gold,
                             data::kNumPosTags)
          .accuracy;
  double acc_diver =
      eval::OneToOneAccuracy(hmm::DecodeDataset(diver, corpus.sentences), gold,
                             data::kNumPosTags)
          .accuracy;

  // Fig. 7/8 shape: the prior increases the diversity objective it
  // regularizes (log det of the row kernel; plain EM leaves near-coincident
  // rows) without materially hurting accuracy.
  EXPECT_GT(dpp::LogDetNormalizedKernel(diver.a, 0.5),
            dpp::LogDetNormalizedKernel(base.a, 0.5));
  EXPECT_GT(acc_diver, acc_base - 0.03);
  EXPECT_GT(acc_diver, 1.5 / 15.0);  // far above chance
}

// --------------------------------------------------- OCR (Fig. 10 shape) ---

TEST(OcrIntegrationTest, SupervisedDiversifiedMatchesOrBeatsCounting) {
  data::OcrOptions oopts;
  oopts.num_words = 500;
  oopts.pixel_flip = 0.12;  // noisy enough that transitions matter
  oopts.seed = 31;
  data::OcrDataset ds = data::GenerateOcrDataset(oopts);

  prob::Rng rng(32);
  auto folds = eval::KFoldSplit(ds.words.size(), 5, rng);
  const auto& fold = folds[0];
  auto train = eval::Subset(ds.words, fold.train);
  auto test = eval::Subset(ds.words, fold.test);

  auto emission =
      [&]() -> std::unique_ptr<prob::EmissionModel<prob::BinaryObs>> {
    return std::make_unique<prob::BernoulliEmission>(
        linalg::Matrix(data::kNumLetters, data::kGlyphDims, 0.5));
  };

  core::SupervisedDiversifiedOptions plain;
  plain.alpha = 0.0;
  plain.counting.transition_pseudo_count = 0.1;
  plain.counting.initial_pseudo_count = 0.1;
  hmm::HmmModel<prob::BinaryObs> m0 = core::FitSupervisedDiversified(
      train, data::kNumLetters, emission(), plain);

  core::SupervisedDiversifiedOptions diverse = plain;
  diverse.alpha = 10.0;
  diverse.tether_weight = 1e5;
  hmm::HmmModel<prob::BinaryObs> m1 = core::FitSupervisedDiversified(
      train, data::kNumLetters, emission(), diverse);

  LabelSequences gold, pred0, pred1;
  for (const auto& seq : test) {
    gold.push_back(seq.labels);
    pred0.push_back(
        hmm::Viterbi(m0.pi, m0.a, m0.emission->LogProbTable(seq.obs)).path);
    pred1.push_back(
        hmm::Viterbi(m1.pi, m1.a, m1.emission->LogProbTable(seq.obs)).path);
  }
  double acc0 = eval::FrameAccuracy(pred0, gold);
  double acc1 = eval::FrameAccuracy(pred1, gold);
  EXPECT_GT(acc0, 0.55);            // the supervised HMM works at all
  EXPECT_GE(acc1, acc0 - 0.02);     // the prior does not hurt (Fig. 10)
}

// ------------------------------------------------- Model selection shape ---

TEST(AlphaSweepIntegrationTest, OverRegularizationTradesDataFitForDiversity) {
  // Fig. 7/10 right edge: a huge alpha trades data fit for diversity. At the
  // M-step level this is deterministic — for transition counts coming from a
  // near-static-mixture chain (near-identical rows), the alpha-dominated
  // update must sacrifice count log-likelihood relative to the ML update,
  // while gaining row diversity.
  hmm::HmmModel<int> truth = [&] {
    prob::Rng rng(41);
    return hmm::HmmModel<int>(
        rng.DirichletSymmetric(3, 2.0), rng.RandomStochasticMatrix(3, 3, 50.0),
        std::make_unique<prob::CategoricalEmission>(
            prob::CategoricalEmission::RandomInit(3, 8, rng)));
  }();
  prob::Rng rng(42);
  hmm::Dataset<int> data = hmm::SampleDataset(truth, 50, 10, rng);

  linalg::Matrix counts(3, 3);
  for (const auto& seq : data) {
    for (size_t t = 1; t < seq.length(); ++t) {
      counts(static_cast<size_t>(seq.labels[t - 1]),
             static_cast<size_t>(seq.labels[t])) += 1.0;
    }
  }

  core::TransitionUpdateOptions ml_opts;
  ml_opts.alpha = 0.0;
  core::TransitionUpdateResult ml = core::UpdateTransitions(
      linalg::Matrix(3, 3, 1.0 / 3.0), counts, ml_opts);

  core::TransitionUpdateOptions extreme_opts;
  extreme_opts.alpha = 5000.0;
  core::TransitionUpdateResult extreme = core::UpdateTransitions(
      ml.a, counts, extreme_opts);

  // Count log-likelihood (the alpha = 0 objective) degrades...
  double fit_ml = core::TransitionObjective(ml.a, counts, ml_opts);
  double fit_extreme = core::TransitionObjective(extreme.a, counts, ml_opts);
  EXPECT_GT(fit_ml, fit_extreme + 1.0);
  // ...while diversity improves.
  EXPECT_GT(extreme.log_det, ml.log_det + 0.5);
  EXPECT_GT(eval::AveragePairwiseDiversity(extreme.a),
            eval::AveragePairwiseDiversity(ml.a));
}

}  // namespace
}  // namespace dhmm
