// Tests for the extension modules: Dirichlet-MAP transition priors,
// posterior decoding, and state-count selection.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/dirichlet_prior.h"
#include "core/state_selection.h"
#include "data/toy.h"
#include "eval/metrics.h"
#include "hmm/posterior_decoding.h"
#include "hmm/sampler.h"
#include "hmm/trainer.h"
#include "prob/categorical_emission.h"
#include "prob/gaussian_emission.h"

namespace dhmm {
namespace {

// --------------------------------------------------------- DirichletPrior ---

TEST(DirichletPriorTest, BetaOneIsMaximumLikelihood) {
  linalg::Matrix counts{{6.0, 2.0}, {1.0, 3.0}};
  linalg::Matrix a = core::DirichletMapTransitions(counts, 1.0);
  EXPECT_NEAR(a(0, 0), 0.75, 1e-12);
  EXPECT_NEAR(a(1, 1), 0.75, 1e-12);
}

TEST(DirichletPriorTest, LargeBetaSmoothsTowardUniform) {
  linalg::Matrix counts{{6.0, 2.0}};
  linalg::Matrix mild = core::DirichletMapTransitions(counts, 2.0);
  linalg::Matrix heavy = core::DirichletMapTransitions(counts, 100.0);
  // Heavier smoothing moves the dominant entry closer to 0.5.
  EXPECT_LT(heavy(0, 0), mild(0, 0));
  EXPECT_LT(mild(0, 0), 0.75);
  EXPECT_NEAR(heavy(0, 0), 0.5, 0.05);
}

TEST(DirichletPriorTest, SparseBetaZeroesSmallCounts) {
  linalg::Matrix counts{{5.0, 0.3, 0.2}};
  linalg::Matrix a = core::DirichletMapTransitions(counts, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
}

TEST(DirichletPriorTest, AllClippedRowFallsBackToMl) {
  linalg::Matrix counts{{0.1, 0.2}};
  linalg::Matrix a = core::DirichletMapTransitions(counts, 0.5);
  EXPECT_NEAR(a(0, 0), 0.1 / 0.3, 1e-12);
  EXPECT_NEAR(a(0, 1), 0.2 / 0.3, 1e-12);
}

TEST(DirichletPriorTest, OutputAlwaysRowStochastic) {
  prob::Rng rng(1);
  for (double beta : {0.3, 0.9, 1.0, 3.0, 30.0}) {
    linalg::Matrix counts(4, 4);
    for (size_t i = 0; i < 4; ++i)
      for (size_t j = 0; j < 4; ++j) counts(i, j) = 3.0 * rng.Uniform();
    linalg::Matrix a = core::DirichletMapTransitions(counts, beta);
    EXPECT_TRUE(a.IsRowStochastic(1e-9)) << "beta " << beta;
  }
}

TEST(DirichletPriorTest, MStepCallbackPluggedIntoEm) {
  prob::Rng rng(2);
  hmm::HmmModel<int> truth(
      rng.DirichletSymmetric(3, 2.0), rng.RandomStochasticMatrix(3, 3, 0.5),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(3, 6, rng)));
  hmm::Dataset<int> data = hmm::SampleDataset(truth, 40, 10, rng);
  hmm::HmmModel<int> model(
      rng.DirichletSymmetric(3, 2.0), rng.RandomStochasticMatrix(3, 3, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(3, 6, rng)));
  hmm::EmOptions em;
  em.max_iters = 10;
  em.transition_m_step = core::MakeDirichletMStep(5.0);
  hmm::FitEm(&model, data, em);
  EXPECT_TRUE(model.a.IsRowStochastic(1e-8));
  // Smoothing keeps every transition strictly positive.
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 3; ++j) EXPECT_GT(model.a(i, j), 0.0);
}

// ------------------------------------------------------ PosteriorDecoding ---

TEST(PosteriorDecodingTest, MatchesGammaArgmax) {
  prob::Rng rng(3);
  linalg::Vector pi = rng.DirichletSymmetric(3, 1.5);
  linalg::Matrix a = rng.RandomStochasticMatrix(3, 3, 1.5);
  linalg::Matrix log_b(10, 3);
  for (size_t t = 0; t < 10; ++t)
    for (size_t i = 0; i < 3; ++i) log_b(t, i) = -3.0 * rng.Uniform();
  std::vector<int> path = hmm::PosteriorDecode(pi, a, log_b);
  hmm::ForwardBackwardResult fb = hmm::ForwardBackward(pi, a, log_b);
  for (size_t t = 0; t < 10; ++t) {
    EXPECT_EQ(path[t], static_cast<int>(fb.gamma.Row(t).argmax()));
  }
}

TEST(PosteriorDecodingTest, AgreesWithViterbiOnEasyChains) {
  // Near-deterministic emissions: both decoders recover the truth.
  linalg::Matrix b{{0.98, 0.01, 0.01}, {0.01, 0.98, 0.01}, {0.01, 0.01, 0.98}};
  prob::Rng rng(4);
  hmm::HmmModel<int> m(linalg::Vector(3, 1.0 / 3),
                       rng.RandomStochasticMatrix(3, 3, 5.0),
                       std::make_unique<prob::CategoricalEmission>(b));
  hmm::Dataset<int> data = hmm::SampleDataset(m, 20, 12, rng);
  auto posterior = hmm::PosteriorDecodeDataset(m, data);
  auto viterbi = hmm::DecodeDataset(m, data);
  size_t agree = 0, total = 0;
  for (size_t s = 0; s < data.size(); ++s) {
    for (size_t t = 0; t < data[s].length(); ++t) {
      agree += posterior[s][t] == viterbi[s][t];
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.95);
}

TEST(PosteriorDecodingTest, OptimizesFrameAccuracyOnAverage) {
  // On ambiguous chains posterior decoding's expected frame accuracy >=
  // Viterbi's (it is the Bayes decoder for that loss). Check across seeds.
  double post_total = 0.0, vit_total = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    prob::Rng rng(100 + seed);
    hmm::HmmModel<int> m(
        rng.DirichletSymmetric(3, 1.0), rng.RandomStochasticMatrix(3, 3, 0.7),
        std::make_unique<prob::CategoricalEmission>(
            prob::CategoricalEmission::RandomInit(3, 4, rng)));
    hmm::Dataset<int> data = hmm::SampleDataset(m, 60, 15, rng);
    eval::LabelSequences gold;
    for (const auto& s : data) gold.push_back(s.labels);
    post_total +=
        eval::FrameAccuracy(hmm::PosteriorDecodeDataset(m, data), gold);
    vit_total += eval::FrameAccuracy(hmm::DecodeDataset(m, data), gold);
  }
  EXPECT_GE(post_total, vit_total - 0.01);
}

// -------------------------------------------------------- StateSelection ---

TEST(StateSelectionTest, FreeParameterCount) {
  // k=3, 2 emission params/state: 2 + 6 + 6 = 14.
  EXPECT_DOUBLE_EQ(core::FreeParameterCount(3, 2.0), 14.0);
  EXPECT_DOUBLE_EQ(core::FreeParameterCount(2, 1.0), 1.0 + 2.0 + 2.0);
}

TEST(StateSelectionTest, RecoversTrueStateCount) {
  prob::Rng data_rng(5);
  // Well-separated 3-state Gaussian HMM.
  hmm::HmmModel<double> truth(
      linalg::Vector{0.3, 0.4, 0.3},
      linalg::Matrix{{0.7, 0.2, 0.1}, {0.1, 0.7, 0.2}, {0.2, 0.1, 0.7}},
      std::make_unique<prob::GaussianEmission>(
          linalg::Vector{0.0, 5.0, 10.0}, linalg::Vector{0.5, 0.5, 0.5}));
  hmm::Dataset<double> data = hmm::SampleDataset(truth, 80, 12, data_rng);

  core::ModelFactory<double> factory = [](size_t k, prob::Rng& rng) {
    return hmm::HmmModel<double>(
        rng.DirichletSymmetric(k, 3.0), rng.RandomStochasticMatrix(k, k, 3.0),
        std::make_unique<prob::GaussianEmission>(
            prob::GaussianEmission::RandomInit(k, rng, 5.0, 4.0)));
  };
  core::StateSelectionOptions opts;
  opts.min_states = 2;
  opts.max_states = 5;
  opts.em_iters = 30;
  opts.restarts = 2;
  core::StateSelectionResult result =
      core::SelectStateCount(data, factory, 2.0, opts);
  EXPECT_EQ(result.best_k, 3u);
  ASSERT_EQ(result.candidates.size(), 4u);
  // Log-likelihood is monotone non-decreasing in k (up to local optima).
  EXPECT_GT(result.candidates[1].log_likelihood,
            result.candidates[0].log_likelihood);
}

TEST(StateSelectionTest, AicAndBicDifferOnlyInPenalty) {
  prob::Rng data_rng(6);
  hmm::HmmModel<double> truth(
      linalg::Vector{0.5, 0.5}, linalg::Matrix{{0.8, 0.2}, {0.3, 0.7}},
      std::make_unique<prob::GaussianEmission>(linalg::Vector{0.0, 4.0},
                                               linalg::Vector{0.5, 0.5}));
  hmm::Dataset<double> data = hmm::SampleDataset(truth, 40, 10, data_rng);
  core::ModelFactory<double> factory = [](size_t k, prob::Rng& rng) {
    return hmm::HmmModel<double>(
        rng.DirichletSymmetric(k, 3.0), rng.RandomStochasticMatrix(k, k, 3.0),
        std::make_unique<prob::GaussianEmission>(
            prob::GaussianEmission::RandomInit(k, rng, 2.0, 2.0)));
  };
  core::StateSelectionOptions opts;
  opts.min_states = 2;
  opts.max_states = 3;
  opts.em_iters = 20;
  opts.restarts = 1;
  opts.criterion = core::SelectionCriterion::kBic;
  auto bic = core::SelectStateCount(data, factory, 2.0, opts);
  opts.criterion = core::SelectionCriterion::kAic;
  auto aic = core::SelectStateCount(data, factory, 2.0, opts);
  // Same fits (same seeds), different penalties.
  for (size_t i = 0; i < bic.candidates.size(); ++i) {
    EXPECT_NEAR(bic.candidates[i].log_likelihood,
                aic.candidates[i].log_likelihood, 1e-9);
    double n = static_cast<double>(hmm::TotalFrames(data));
    double expected_gap = bic.candidates[i].num_parameters * std::log(n) -
                          2.0 * bic.candidates[i].num_parameters;
    EXPECT_NEAR(bic.candidates[i].score - aic.candidates[i].score,
                expected_gap, 1e-9);
  }
}

}  // namespace
}  // namespace dhmm
