// The serve-layer contract (the PR-5 counterpart of engine/mstep/kernels
// tests):
//  - DecodeService results are bitwise-identical to the offline
//    single-threaded Viterbi / PosteriorDecode / LogLikelihood for every
//    worker count and batch size,
//  - RCU model hot-swap: in-flight batches finish on their snapshot, new
//    requests see the new model; ReloadModel round-trips SaveHmmToFile
//    checkpoints and keeps serving the old model on failure,
//  - steady-state requests at a fixed shape make zero heap allocations
//    (instrumented operator new),
//  - StreamingDecoder's running log-likelihood matches offline
//    LogLikelihood bitwise on every prefix, and with a full-sequence lag
//    its labels match offline PosteriorDecode exactly; pushes are
//    allocation-free after warm-up.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/posterior_decoding.h"
#include "hmm/sampler.h"
#include "hmm/sequence.h"
#include "hmm/serialization.h"
#include "prob/categorical_emission.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"
#include "serve/decode_service.h"
#include "serve/streaming_decoder.h"

// ----------------------------------------------------- allocation counter ---

// Global operator new instrumentation: every heap allocation made anywhere
// in this binary bumps the counter, so a zero delta across a call proves
// the call is allocation-free (see kernels_test.cc for the same pattern).
namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dhmm {
namespace {

std::shared_ptr<const hmm::HmmModel<double>> MakeModel(size_t k,
                                                       uint64_t seed) {
  prob::Rng rng(seed);
  linalg::Vector mu(k);
  linalg::Vector sigma(k, 0.8);
  for (size_t i = 0; i < k; ++i) mu[i] = static_cast<double>(i);
  return std::make_shared<const hmm::HmmModel<double>>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::GaussianEmission>(mu, sigma));
}

hmm::Dataset<double> MakeData(const hmm::HmmModel<double>& model,
                              size_t count, size_t length, uint64_t seed) {
  prob::Rng rng(seed);
  return hmm::SampleDataset(model, count, length, rng);
}

// Offline single-threaded reference for one sequence under one model.
struct OfflineRef {
  hmm::ViterbiResult viterbi;
  std::vector<int> posterior;
  double log_likelihood;
};

OfflineRef Offline(const hmm::HmmModel<double>& m,
                   const std::vector<double>& obs) {
  OfflineRef ref;
  linalg::Matrix log_b = m.emission->LogProbTable(obs);
  ref.viterbi = hmm::Viterbi(m.pi, m.a, log_b);
  ref.posterior = hmm::PosteriorDecode(m.pi, m.a, log_b);
  ref.log_likelihood = hmm::LogLikelihood(m.pi, m.a, log_b);
  return ref;
}

// ----------------------------------------------------------- DecodeService ---

TEST(DecodeServiceTest, BitwiseMatchesOfflineForEveryWorkerAndBatchSize) {
  auto model = MakeModel(4, 11);
  hmm::Dataset<double> data = MakeData(*model, 12, 17, 12);
  std::vector<OfflineRef> refs;
  for (const auto& seq : data) refs.push_back(Offline(*model, seq.obs));

  for (int threads : {1, 2, 4}) {
    for (size_t max_batch : {size_t{1}, size_t{3}, size_t{64}}) {
      serve::ServeOptions opts;
      opts.num_threads = threads;
      opts.max_batch = max_batch;
      serve::DecodeService<double> service(model, opts);
      std::vector<serve::DecodeFuture<double>> futures;
      for (const auto& seq : data) {
        futures.push_back(
            service.Submit(serve::DecodeKind::kViterbi, seq.obs));
        futures.push_back(
            service.Submit(serve::DecodeKind::kPosterior, seq.obs));
        futures.push_back(
            service.Submit(serve::DecodeKind::kLogLikelihood, seq.obs));
      }
      for (size_t s = 0; s < data.size(); ++s) {
        const serve::DecodeResult& vit = futures[3 * s].Wait();
        ASSERT_TRUE(vit.status.ok());
        EXPECT_EQ(vit.path, refs[s].viterbi.path);
        EXPECT_EQ(vit.value, refs[s].viterbi.log_joint);  // bitwise

        const serve::DecodeResult& post = futures[3 * s + 1].Wait();
        ASSERT_TRUE(post.status.ok());
        EXPECT_EQ(post.path, refs[s].posterior);
        EXPECT_EQ(post.value, refs[s].log_likelihood);

        const serve::DecodeResult& ll = futures[3 * s + 2].Wait();
        ASSERT_TRUE(ll.status.ok());
        EXPECT_TRUE(ll.path.empty());
        EXPECT_EQ(ll.value, refs[s].log_likelihood);
      }
      futures.clear();  // release slots before the service dies
      EXPECT_EQ(service.requests_served(), 3 * data.size());
      EXPECT_LE(service.largest_batch(), max_batch);
    }
  }
}

TEST(DecodeServiceTest, HotSwapOldSnapshotFinishesNewRequestsSeeNewModel) {
  auto model_a = MakeModel(4, 21);
  auto model_b = MakeModel(4, 22);
  hmm::Dataset<double> data = MakeData(*model_a, 8, 15, 23);

  serve::ServeOptions opts;
  opts.num_threads = 4;
  opts.max_batch = 2;
  serve::DecodeService<double> service(model_a, opts);
  EXPECT_EQ(service.model_version(), 1u);

  // Round 1 under A: wait for every result before swapping, so the old
  // snapshot demonstrably finishes all its work.
  {
    std::vector<serve::DecodeFuture<double>> futures;
    for (const auto& seq : data) {
      futures.push_back(service.Submit(serve::DecodeKind::kViterbi, seq.obs));
    }
    for (size_t s = 0; s < data.size(); ++s) {
      const serve::DecodeResult& r = futures[s].Wait();
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(r.model_version, 1u);
      EXPECT_EQ(r.path, Offline(*model_a, data[s].obs).viterbi.path);
    }
  }

  service.UpdateModel(model_b);
  EXPECT_EQ(service.model_version(), 2u);

  // Round 2: everything submitted after the swap is served by B.
  {
    std::vector<serve::DecodeFuture<double>> futures;
    for (const auto& seq : data) {
      futures.push_back(service.Submit(serve::DecodeKind::kViterbi, seq.obs));
    }
    for (size_t s = 0; s < data.size(); ++s) {
      const serve::DecodeResult& r = futures[s].Wait();
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(r.model_version, 2u);
      const OfflineRef ref = Offline(*model_b, data[s].obs);
      EXPECT_EQ(r.path, ref.viterbi.path);
      EXPECT_EQ(r.value, ref.viterbi.log_joint);
    }
  }
}

TEST(DecodeServiceTest, MidStreamSwapServesEveryRequestConsistently) {
  // Submissions race the swap: each result must be internally consistent —
  // decoded entirely under the single model version it reports, bitwise.
  auto model_a = MakeModel(3, 31);
  auto model_b = MakeModel(3, 32);
  hmm::Dataset<double> data = MakeData(*model_a, 24, 12, 33);

  serve::ServeOptions opts;
  opts.num_threads = 2;
  opts.max_batch = 4;
  serve::DecodeService<double> service(model_a, opts);
  std::vector<serve::DecodeFuture<double>> futures;
  for (size_t s = 0; s < data.size(); ++s) {
    if (s == data.size() / 2) service.UpdateModel(model_b);
    futures.push_back(service.Submit(serve::DecodeKind::kViterbi, data[s].obs));
  }
  size_t new_version_seen = 0;
  for (size_t s = 0; s < data.size(); ++s) {
    const serve::DecodeResult& r = futures[s].Wait();
    ASSERT_TRUE(r.status.ok());
    ASSERT_TRUE(r.model_version == 1 || r.model_version == 2);
    const hmm::HmmModel<double>& m =
        r.model_version == 1 ? *model_a : *model_b;
    EXPECT_EQ(r.path, Offline(m, data[s].obs).viterbi.path);
    // A request submitted after UpdateModel returned can only see B.
    if (s >= data.size() / 2) {
      EXPECT_EQ(r.model_version, 2u);
      ++new_version_seen;
    }
  }
  EXPECT_EQ(new_version_seen, data.size() - data.size() / 2);
}

TEST(DecodeServiceTest, ReloadModelHotSwapsCheckpointAtomically) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "dhmm_serve_reload.txt").string();
  auto model_a = MakeModel(4, 41);
  auto model_b = MakeModel(4, 42);
  hmm::Dataset<double> data = MakeData(*model_a, 4, 10, 43);

  serve::DecodeService<double> service(model_a, {});
  // Failure keeps the old model serving.
  Status st = service.ReloadModel("/nonexistent/dir/model.txt");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(service.model_version(), 1u);

  ASSERT_TRUE(hmm::SaveHmmToFile(*model_b, path).ok());
  ASSERT_TRUE(service.ReloadModel(path).ok());
  EXPECT_EQ(service.model_version(), 2u);
  for (const auto& seq : data) {
    serve::DecodeFuture<double> f =
        service.Submit(serve::DecodeKind::kViterbi, seq.obs);
    const serve::DecodeResult& r = f.Wait();
    ASSERT_TRUE(r.status.ok());
    // The checkpoint round-trips at 17-digit precision, so the reloaded
    // model decodes bitwise-identically to the in-memory original.
    const OfflineRef ref = Offline(*model_b, seq.obs);
    EXPECT_EQ(r.path, ref.viterbi.path);
    EXPECT_EQ(r.value, ref.viterbi.log_joint);
  }
  fs::remove(path);
}

TEST(DecodeServiceTest, EmptySequenceRejectedWithoutPoisoningService) {
  auto model = MakeModel(3, 51);
  hmm::Dataset<double> data = MakeData(*model, 1, 8, 52);
  serve::DecodeService<double> service(model, {});
  std::vector<double> empty;
  serve::DecodeFuture<double> bad =
      service.Submit(serve::DecodeKind::kViterbi, empty);
  const serve::DecodeResult& r = bad.Wait();
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  bad.Release();
  // The service keeps serving.
  serve::DecodeFuture<double> good =
      service.Submit(serve::DecodeKind::kViterbi, data[0].obs);
  EXPECT_TRUE(good.Wait().status.ok());
}

TEST(DecodeServiceTest, ImpossibleObservationRejectedPerRequest) {
  // Symbol 2 has zero mass in every state: deeper inference layers treat
  // an all-impossible frame as a DHMM_CHECK (process abort); the service
  // must turn it into a per-request error instead.
  auto model = std::make_shared<const hmm::HmmModel<int>>(
      linalg::Vector{0.5, 0.5}, linalg::Matrix{{0.5, 0.5}, {0.5, 0.5}},
      std::make_unique<prob::CategoricalEmission>(
          linalg::Matrix{{0.5, 0.5, 0.0}, {0.25, 0.75, 0.0}}));
  serve::DecodeService<int> service(model, {});
  const std::vector<int> poisoned = {0, 2, 1};
  const std::vector<int> fine = {0, 1, 1};
  for (auto kind : {serve::DecodeKind::kViterbi, serve::DecodeKind::kPosterior,
                    serve::DecodeKind::kLogLikelihood}) {
    serve::DecodeFuture<int> bad = service.Submit(kind, poisoned);
    const serve::DecodeResult& r = bad.Wait();
    ASSERT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
    if (kind != serve::DecodeKind::kViterbi) {
      // The forward-based paths report the offending frame; Viterbi only
      // knows the whole sequence has no finite path.
      EXPECT_NE(r.status.message().find("frame 1"), std::string::npos);
    }
    bad.Release();
    serve::DecodeFuture<int> good = service.Submit(kind, fine);
    EXPECT_TRUE(good.Wait().status.ok());
  }
}

TEST(DecodeServiceTest, UnreachableSequenceRejectedPerRequest) {
  // Every frame is emission-possible in isolation, but pi/A zeros make the
  // sequence unreachable: pi pins the chain in state 0 forever while the
  // observation demands state 1. The naked inference layer would abort on
  // the vanished forward message; the service must reject per-request.
  auto model = std::make_shared<const hmm::HmmModel<int>>(
      linalg::Vector{1.0, 0.0}, linalg::Matrix{{1.0, 0.0}, {0.0, 1.0}},
      std::make_unique<prob::CategoricalEmission>(
          linalg::Matrix{{1.0, 0.0}, {0.0, 1.0}}));
  serve::DecodeService<int> service(model, {});
  const std::vector<int> unreachable_at_0 = {1};
  const std::vector<int> unreachable_at_2 = {0, 0, 1};
  const std::vector<int> fine = {0, 0, 0};
  for (auto kind : {serve::DecodeKind::kViterbi, serve::DecodeKind::kPosterior,
                    serve::DecodeKind::kLogLikelihood}) {
    const bool reports_frame = kind != serve::DecodeKind::kViterbi;
    serve::DecodeFuture<int> f0 = service.Submit(kind, unreachable_at_0);
    const serve::DecodeResult& r0 = f0.Wait();
    ASSERT_FALSE(r0.status.ok());
    EXPECT_EQ(r0.status.code(), StatusCode::kInvalidArgument);
    if (reports_frame) {
      EXPECT_NE(r0.status.message().find("frame 0"), std::string::npos);
    }
    f0.Release();
    serve::DecodeFuture<int> f2 = service.Submit(kind, unreachable_at_2);
    const serve::DecodeResult& r2 = f2.Wait();
    ASSERT_FALSE(r2.status.ok());
    if (reports_frame) {
      EXPECT_NE(r2.status.message().find("frame 2"), std::string::npos);
    }
    f2.Release();
    serve::DecodeFuture<int> ok = service.Submit(kind, fine);
    EXPECT_TRUE(ok.Wait().status.ok());
  }
}

TEST(DecodeServiceTest, UnderflowedForwardMassRejectedNotAborted) {
  // Every frame is symbolically possible (finite log-prob in a reachable
  // state), but the emission shift is dominated by an unreachable state
  // ~5000 nats more likely, so the reachable state's scaled emission
  // underflows exp() to exactly 0 and the forward mass vanishes
  // numerically. This must surface as a per-request error too.
  linalg::Vector mu(2);
  mu[0] = 0.0;
  mu[1] = 100.0;
  auto model = std::make_shared<const hmm::HmmModel<double>>(
      linalg::Vector{1.0, 0.0}, linalg::Matrix{{1.0, 0.0}, {0.0, 1.0}},
      std::make_unique<prob::GaussianEmission>(mu, linalg::Vector(2, 1.0)));
  serve::DecodeService<double> service(model, {});
  const std::vector<double> outlier = {100.0};
  for (auto kind :
       {serve::DecodeKind::kPosterior, serve::DecodeKind::kLogLikelihood}) {
    serve::DecodeFuture<double> f = service.Submit(kind, outlier);
    const serve::DecodeResult& r = f.Wait();
    ASSERT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
    f.Release();
  }
  // Viterbi runs in the log domain, immune to the underflow: it decodes
  // the (astronomically unlikely) reachable path.
  serve::DecodeFuture<double> v =
      service.Submit(serve::DecodeKind::kViterbi, outlier);
  EXPECT_TRUE(v.Wait().status.ok());
}

TEST(DecodeServiceTest, SteadyStateRequestsAreAllocationFree) {
  auto model = MakeModel(8, 61);
  hmm::Dataset<double> data = MakeData(*model, 16, 24, 62);
  serve::ServeOptions opts;
  opts.num_threads = 1;  // deterministic single-workspace path
  opts.max_batch = 8;
  serve::DecodeService<double> service(model, opts);

  const serve::DecodeKind kinds[] = {serve::DecodeKind::kViterbi,
                                     serve::DecodeKind::kPosterior,
                                     serve::DecodeKind::kLogLikelihood};
  // Warm-up: hold all futures so the slot pool grows to the full in-flight
  // census, every slot's path buffer sees this sequence length (round 0 is
  // all-Viterbi so no slot is left with a cold path), and the workspace +
  // transition cache reach steady state.
  for (int round = 0; round < 2; ++round) {
    std::vector<serve::DecodeFuture<double>> futures;
    futures.reserve(data.size());
    for (size_t s = 0; s < data.size(); ++s) {
      futures.push_back(service.Submit(
          round == 0 ? serve::DecodeKind::kViterbi : kinds[s % 3],
          data[s].obs));
    }
    for (auto& f : futures) f.Wait();
  }

  std::vector<serve::DecodeFuture<double>> futures;
  futures.reserve(data.size());
  const long before = g_alloc_count.load(std::memory_order_relaxed);
  for (size_t s = 0; s < data.size(); ++s) {
    futures.push_back(service.Submit(kinds[s % 3], data[s].obs));
  }
  double sink = 0.0;
  for (auto& f : futures) sink += f.Wait().value;
  for (auto& f : futures) f.Release();
  const long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "steady-state requests allocated";
  EXPECT_NE(sink, 0.0);
}

// -------------------------------------------------------- StreamingDecoder ---

TEST(StreamingDecoderTest, PrefixLogLikelihoodMatchesOfflineBitwise) {
  auto model = MakeModel(5, 71);
  hmm::Dataset<double> data = MakeData(*model, 1, 20, 72);
  const std::vector<double>& obs = data[0].obs;

  serve::StreamingOptions opts;
  opts.lag = 3;
  serve::StreamingDecoder<double> dec(model, opts);
  for (size_t t = 0; t < obs.size(); ++t) {
    dec.Push(obs[t]);
    std::vector<double> prefix(obs.begin(), obs.begin() + t + 1);
    linalg::Matrix log_b = model->emission->LogProbTable(prefix);
    EXPECT_EQ(dec.log_likelihood(),
              hmm::LogLikelihood(model->pi, model->a, log_b))
        << "prefix length " << t + 1;
  }
}

TEST(StreamingDecoderTest, FullLagFinishMatchesOfflinePosteriorDecode) {
  auto model = MakeModel(4, 81);
  for (size_t len : {1, 2, 7, 16}) {
    hmm::Dataset<double> data = MakeData(*model, 1, len, 82 + len);
    const std::vector<double>& obs = data[0].obs;
    serve::StreamingOptions opts;
    opts.lag = obs.size();  // > T - 1: nothing emitted until Finish
    serve::StreamingDecoder<double> dec(model, opts);
    for (double y : obs) EXPECT_FALSE(dec.Push(y));
    std::vector<int> labels;
    dec.Finish(&labels);
    linalg::Matrix log_b = model->emission->LogProbTable(obs);
    EXPECT_EQ(labels, hmm::PosteriorDecode(model->pi, model->a, log_b))
        << "length " << len;
  }
}

TEST(StreamingDecoderTest, FixedLagEmitsOnTimeAndFinishFlushesTheRest) {
  auto model = MakeModel(4, 91);
  hmm::Dataset<double> data = MakeData(*model, 1, 12, 92);
  const std::vector<double>& obs = data[0].obs;
  serve::StreamingOptions opts;
  opts.lag = 4;
  serve::StreamingDecoder<double> dec(model, opts);
  std::vector<int> labels;
  for (size_t t = 0; t < obs.size(); ++t) {
    const bool emitted = dec.Push(obs[t]);
    EXPECT_EQ(emitted, t >= opts.lag);
    if (emitted) labels.push_back(dec.last_label());
  }
  EXPECT_EQ(labels.size(), obs.size() - opts.lag);
  dec.Finish(&labels);
  ASSERT_EQ(labels.size(), obs.size());
  // The final `lag` frames are smoothed against the true end of the
  // sequence, so they agree exactly with offline posterior decoding.
  linalg::Matrix log_b = model->emission->LogProbTable(obs);
  std::vector<int> offline = hmm::PosteriorDecode(model->pi, model->a, log_b);
  for (size_t t = obs.size() - opts.lag; t < obs.size(); ++t) {
    EXPECT_EQ(labels[t], offline[t]) << "frame " << t;
  }
  for (int label : labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(StreamingDecoderTest, ZeroLagIsFilteringAndEmitsImmediately) {
  // lag = 0 is the aliasing-prone shape (one live frame in the ring): the
  // forward recursion must still match offline bitwise at every prefix.
  auto model = MakeModel(3, 101);
  hmm::Dataset<double> data = MakeData(*model, 1, 6, 102);
  const std::vector<double>& obs = data[0].obs;
  serve::StreamingOptions opts;
  opts.lag = 0;
  serve::StreamingDecoder<double> dec(model, opts);
  for (size_t t = 0; t < obs.size(); ++t) {
    EXPECT_TRUE(dec.Push(obs[t]));
    std::vector<double> prefix(obs.begin(), obs.begin() + t + 1);
    linalg::Matrix log_b = model->emission->LogProbTable(prefix);
    EXPECT_EQ(dec.log_likelihood(),
              hmm::LogLikelihood(model->pi, model->a, log_b))
        << "prefix length " << t + 1;
  }
  EXPECT_EQ(dec.labels_emitted(), obs.size());
  // The final filtered label coincides with offline posterior decoding's
  // final frame (beta = 1 there in both).
  linalg::Matrix log_b = model->emission->LogProbTable(obs);
  std::vector<int> offline = hmm::PosteriorDecode(model->pi, model->a, log_b);
  EXPECT_EQ(dec.last_label(), offline.back());
}

TEST(StreamingDecoderTest, PushIsAllocationFreeAfterWarmup) {
  auto model = MakeModel(6, 111);
  hmm::Dataset<double> data = MakeData(*model, 1, 64, 112);
  serve::StreamingOptions opts;
  opts.lag = 8;
  serve::StreamingDecoder<double> dec(model, opts);
  // Two warm pushes: the cached transition transpose is first built by the
  // t = 1 forward step.
  dec.Push(data[0].obs[0]);
  dec.Push(data[0].obs[1]);
  const long before = g_alloc_count.load(std::memory_order_relaxed);
  for (size_t t = 2; t < data[0].obs.size(); ++t) dec.Push(data[0].obs[t]);
  const long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "streaming pushes allocated";
}

TEST(StreamingDecoderTest, ResetReusesWarmBuffersWithoutAllocating) {
  auto model_a = MakeModel(6, 115);
  auto model_b = MakeModel(6, 116);  // same state count: same buffer shape
  hmm::Dataset<double> data = MakeData(*model_a, 1, 32, 117);
  serve::StreamingOptions opts;
  opts.lag = 8;
  serve::StreamingDecoder<double> dec(model_a, opts);
  for (size_t t = 0; t < 16; ++t) dec.Push(data[0].obs[t]);

  const long before = g_alloc_count.load(std::memory_order_relaxed);
  // Plain Reset: restart the stream on the same model.
  dec.Reset();
  for (size_t t = 0; t < 16; ++t) dec.Push(data[0].obs[t]);
  // Hot-swap Reset: a same-shape model rebuilds the transpose and stream
  // state entirely inside the warm grow-only buffers.
  dec.Reset(model_b);
  for (size_t t = 0; t < 16; ++t) dec.Push(data[0].obs[t]);
  const long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "Reset or post-Reset pushes allocated";
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(dec.frames_pushed(), 16u);
}

TEST(StreamingDecoderTest, ImpossibleObservationPoisonsStreamNotProcess) {
  // Same contract as the batched service: a zero-probability frame is a
  // stream-level error, never a process abort. The bad frame is not
  // consumed, further pushes are refused, and Reset() recovers.
  auto model = std::make_shared<const hmm::HmmModel<int>>(
      linalg::Vector{0.5, 0.5}, linalg::Matrix{{0.5, 0.5}, {0.5, 0.5}},
      std::make_unique<prob::CategoricalEmission>(
          linalg::Matrix{{0.5, 0.5, 0.0}, {0.25, 0.75, 0.0}}));
  serve::StreamingOptions opts;
  opts.lag = 0;
  serve::StreamingDecoder<int> dec(model, opts);
  EXPECT_TRUE(dec.Push(0));
  ASSERT_TRUE(dec.ok());
  EXPECT_FALSE(dec.Push(2));  // symbol 2: zero mass in every state
  ASSERT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dec.frames_pushed(), 1u);  // the bad frame was not consumed
  EXPECT_FALSE(dec.Push(1));  // poisoned until Reset
  std::vector<int> tail;
  dec.Finish(&tail);
  EXPECT_TRUE(tail.empty());
  dec.Reset();
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.Push(1));
}

TEST(StreamingDecoderTest, ResetSwapsModelAndRestartsTheStream) {
  auto model_a = MakeModel(4, 121);
  auto model_b = MakeModel(4, 122);
  hmm::Dataset<double> data = MakeData(*model_a, 1, 10, 123);
  const std::vector<double>& obs = data[0].obs;

  serve::StreamingOptions opts;
  opts.lag = 2;
  serve::StreamingDecoder<double> dec(model_a, opts);
  for (double y : obs) dec.Push(y);
  dec.Reset(model_b);
  EXPECT_EQ(dec.frames_pushed(), 0u);
  EXPECT_EQ(dec.log_likelihood(), 0.0);
  for (double y : obs) dec.Push(y);
  linalg::Matrix log_b = model_b->emission->LogProbTable(obs);
  EXPECT_EQ(dec.log_likelihood(),
            hmm::LogLikelihood(model_b->pi, model_b->a, log_b));
}

}  // namespace
}  // namespace dhmm
