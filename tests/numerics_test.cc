// Numerical stress and invariance properties across the math substrates —
// the edge cases that distinguish production numerics from demo code.
#include <cmath>

#include <gtest/gtest.h>

#include "dpp/logdet.h"
#include "dpp/product_kernel.h"
#include "hmm/inference.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/lu.h"
#include "optim/simplex_projection.h"
#include "prob/logsumexp.h"
#include "prob/rng.h"

namespace dhmm {
namespace {

// ------------------------------------------------------------- LU stress ---

linalg::Matrix Hilbert(size_t n) {
  linalg::Matrix h(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j)
      h(i, j) = 1.0 / static_cast<double>(i + j + 1);
  return h;
}

TEST(NumericsTest, LuSolvesIllConditionedHilbert) {
  // Hilbert(8) has condition number ~1e10; residual should still be small
  // even if the error is not.
  const size_t n = 8;
  linalg::Matrix h = Hilbert(n);
  linalg::Vector x_true(n, 1.0);
  linalg::Vector b = h.MatVec(x_true);
  linalg::Vector x = linalg::LuDecomposition(h).Solve(b);
  linalg::Vector residual = h.MatVec(x) - b;
  EXPECT_LT(residual.norm(), 1e-10);
}

TEST(NumericsTest, LuDeterminantOfScaledIdentityNoOverflow) {
  // det(1e-3 * I_100) = 1e-300 underflows; LogAbsDeterminant must not.
  linalg::Matrix m = linalg::Matrix::Identity(100) * 1e-3;
  double logdet = linalg::LogAbsDeterminant(m);
  EXPECT_NEAR(logdet, 100.0 * std::log(1e-3), 1e-9);
}

TEST(NumericsTest, CholeskyOnNearSingularSpd) {
  // Gram matrix of nearly parallel vectors: SPD but tiny smallest eigenvalue.
  linalg::Matrix g{{1.0, 1.0 - 1e-8}, {1.0 - 1e-8, 1.0}};
  linalg::CholeskyDecomposition chol(g);
  ASSERT_TRUE(chol.ok());
  EXPECT_LT(chol.LogDeterminant(), std::log(1e-7));
}

TEST(NumericsTest, JacobiEigenOnLargerMatrix) {
  prob::Rng rng(1);
  const size_t n = 20;
  linalg::Matrix g(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) g(i, j) = rng.Gaussian();
  linalg::Matrix s = g + g.Transposed();
  linalg::SymmetricEigen eig(s);
  ASSERT_TRUE(eig.converged());
  // trace preserved
  double trace = 0.0, sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    trace += s(i, i);
    sum += eig.eigenvalues()[i];
  }
  EXPECT_NEAR(trace, sum, 1e-8);
  // ascending order
  for (size_t i = 1; i < n; ++i) {
    EXPECT_LE(eig.eigenvalues()[i - 1], eig.eigenvalues()[i] + 1e-12);
  }
}

// ------------------------------------------------------ LogSumExp extremes ---

TEST(NumericsTest, LogSumExpNoOverflowAt709) {
  // exp(710) overflows a double; the shifted form must not.
  linalg::Vector v{710.0, 709.0, 708.0};
  double r = prob::LogSumExp(v);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_NEAR(r, 710.0 + std::log(1.0 + std::exp(-1.0) + std::exp(-2.0)),
              1e-12);
}

TEST(NumericsTest, LogSumExpSingleElement) {
  linalg::Vector v{-3.5};
  EXPECT_DOUBLE_EQ(prob::LogSumExp(v), -3.5);
}

// ---------------------------------------------------- Simplex projections ---

TEST(NumericsTest, SimplexProjectionHugeMagnitudes) {
  linalg::Vector v{1e12, 1e12 - 1.0, -1e12};
  linalg::Vector p = optim::ProjectToSimplex(v);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
  EXPECT_GT(p[0], p[1]);
}

TEST(NumericsTest, SimplexProjectionSingleCoordinate) {
  linalg::Vector v{-5.0};
  linalg::Vector p = optim::ProjectToSimplex(v);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

// -------------------------------------------------------- Kernel extremes ---

TEST(NumericsTest, KernelWithFlooredEntriesStaysFinite) {
  // Rows with exact zeros: the kernel floors them and must stay PSD/finite.
  linalg::Matrix a{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  linalg::Matrix k = dpp::NormalizedKernel(a);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(std::isfinite(k(i, j)));
    }
  }
  EXPECT_TRUE(std::isfinite(dpp::LogDetNormalizedKernel(a)));
}

TEST(NumericsTest, LogDetMonotoneInRowSeparation) {
  // Moving two rows from identical to disjoint monotonically raises log det.
  double prev = -std::numeric_limits<double>::infinity();
  for (double w : {0.999, 0.9, 0.7, 0.5, 0.3, 0.1, 0.001}) {
    linalg::Matrix a{{0.5, 0.5, 0.0, 0.0},
                     {0.5 * w, 0.5 * w, 0.5 * (1 - w), 0.5 * (1 - w)}};
    double ld = dpp::LogDetNormalizedKernel(a);
    EXPECT_GT(ld, prev) << "w = " << w;
    prev = ld;
  }
}

TEST(NumericsTest, GradLogDetFiniteNearBoundary) {
  linalg::Matrix a{{1.0 - 2e-9, 1e-9, 1e-9}, {0.1, 0.8, 0.1},
                   {0.3, 0.1, 0.6}};
  linalg::Matrix grad;
  ASSERT_TRUE(dpp::GradLogDetNormalizedKernel(a, 0.5, &grad));
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(std::isfinite(grad(i, j))) << i << "," << j;
    }
  }
}

// ----------------------------------------------- Forward-backward algebra ---

TEST(NumericsTest, LikelihoodShiftsExactlyWithEmissionShift) {
  // Adding a constant c to every entry of log B multiplies the likelihood by
  // exp(T c): loglik' = loglik + T*c. Posteriors must be unchanged.
  prob::Rng rng(5);
  linalg::Vector pi = rng.DirichletSymmetric(4, 1.5);
  linalg::Matrix a = rng.RandomStochasticMatrix(4, 4, 1.5);
  linalg::Matrix log_b(12, 4);
  for (size_t t = 0; t < 12; ++t)
    for (size_t i = 0; i < 4; ++i) log_b(t, i) = -4.0 * rng.Uniform();
  hmm::ForwardBackwardResult base = hmm::ForwardBackward(pi, a, log_b);

  const double c = -123.456;
  linalg::Matrix shifted = log_b;
  for (size_t t = 0; t < 12; ++t)
    for (size_t i = 0; i < 4; ++i) shifted(t, i) += c;
  hmm::ForwardBackwardResult moved = hmm::ForwardBackward(pi, a, shifted);

  EXPECT_NEAR(moved.log_likelihood, base.log_likelihood + 12.0 * c, 1e-8);
  for (size_t t = 0; t < 12; ++t) {
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(moved.gamma(t, i), base.gamma(t, i), 1e-10);
    }
  }
}

TEST(NumericsTest, ViterbiPathInvariantToEmissionShift) {
  prob::Rng rng(6);
  linalg::Vector pi = rng.DirichletSymmetric(3, 1.5);
  linalg::Matrix a = rng.RandomStochasticMatrix(3, 3, 1.5);
  linalg::Matrix log_b(15, 3);
  for (size_t t = 0; t < 15; ++t)
    for (size_t i = 0; i < 3; ++i) log_b(t, i) = -6.0 * rng.Uniform();
  auto base = hmm::Viterbi(pi, a, log_b);
  linalg::Matrix shifted = log_b;
  for (size_t t = 0; t < 15; ++t)
    for (size_t i = 0; i < 3; ++i) shifted(t, i) += 77.0;
  auto moved = hmm::Viterbi(pi, a, shifted);
  EXPECT_EQ(base.path, moved.path);
  EXPECT_NEAR(moved.log_joint, base.log_joint + 15.0 * 77.0, 1e-8);
}

TEST(NumericsTest, ForwardBackwardPermutationEquivariance) {
  // Relabeling states (permuting pi, A, logB consistently) must permute the
  // posteriors identically.
  prob::Rng rng(7);
  const size_t k = 4, t_len = 9;
  linalg::Vector pi = rng.DirichletSymmetric(k, 1.5);
  linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 1.5);
  linalg::Matrix log_b(t_len, k);
  for (size_t t = 0; t < t_len; ++t)
    for (size_t i = 0; i < k; ++i) log_b(t, i) = -4.0 * rng.Uniform();

  std::vector<size_t> perm = {2, 0, 3, 1};  // new index -> old index
  linalg::Vector pi_p(k);
  linalg::Matrix a_p(k, k), log_b_p(t_len, k);
  for (size_t i = 0; i < k; ++i) {
    pi_p[i] = pi[perm[i]];
    for (size_t j = 0; j < k; ++j) a_p(i, j) = a(perm[i], perm[j]);
    for (size_t t = 0; t < t_len; ++t) log_b_p(t, i) = log_b(t, perm[i]);
  }
  auto base = hmm::ForwardBackward(pi, a, log_b);
  auto permuted = hmm::ForwardBackward(pi_p, a_p, log_b_p);
  EXPECT_NEAR(base.log_likelihood, permuted.log_likelihood, 1e-10);
  for (size_t t = 0; t < t_len; ++t) {
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(permuted.gamma(t, i), base.gamma(t, perm[i]), 1e-10);
    }
  }
}

// --------------------------------------------------------------- Sampling ---

TEST(NumericsTest, GammaSamplerTinyShape) {
  // shape = 0.05 stresses the boost branch; samples must be positive finite
  // with roughly the right mean.
  prob::Rng rng(8);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gamma(0.05);
    ASSERT_TRUE(std::isfinite(g));
    ASSERT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, 0.05, 0.01);
}

TEST(NumericsTest, CategoricalExtremeWeightRatios) {
  prob::Rng rng(9);
  linalg::Vector w{1e-12, 1.0, 1e-12};
  for (int i = 0; i < 1000; ++i) {
    size_t s = rng.Categorical(w);
    EXPECT_EQ(s, 1u);
  }
}

}  // namespace
}  // namespace dhmm
