#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/ocr.h"
#include "data/pos_corpus.h"
#include "data/toy.h"
#include "eval/diversity.h"
#include "eval/metrics.h"

namespace dhmm::data {
namespace {

// ------------------------------------------------------------------- Toy ---

TEST(ToyTest, GroundTruthMatchesPaperParameters) {
  ToyParams p = ToyGroundTruth();
  ASSERT_EQ(p.pi.size(), 5u);
  EXPECT_DOUBLE_EQ(p.pi[0], 0.0101);
  EXPECT_DOUBLE_EQ(p.pi[4], 0.5914);
  EXPECT_NEAR(p.pi.sum(), 1.0, 1e-12);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(p.mu[i], static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(p.sigma[i], 0.025);
  }
  EXPECT_TRUE(p.a.IsRowStochastic(1e-9));
}

TEST(ToyTest, GroundTruthDiversityNearPaperValue) {
  // The paper's Fig. 3 green line sits at ~0.531.
  ToyParams p = ToyGroundTruth();
  double div = eval::AveragePairwiseDiversity(p.a);
  EXPECT_NEAR(div, 0.531, 0.08);
}

TEST(ToyTest, SigmaParameterPropagates) {
  ToyParams p = ToyGroundTruth(2.825);
  for (size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(p.sigma[i], 2.825);
}

TEST(ToyTest, DatasetShapeAndDeterminism) {
  prob::Rng rng1(5), rng2(5);
  auto d1 = GenerateToyDataset(0.025, 10, 6, rng1);
  auto d2 = GenerateToyDataset(0.025, 10, 6, rng2);
  ASSERT_EQ(d1.size(), 10u);
  for (size_t s = 0; s < 10; ++s) {
    ASSERT_EQ(d1[s].length(), 6u);
    ASSERT_TRUE(d1[s].labeled());
    for (size_t t = 0; t < 6; ++t) {
      EXPECT_DOUBLE_EQ(d1[s].obs[t], d2[s].obs[t]);
      EXPECT_EQ(d1[s].labels[t], d2[s].labels[t]);
    }
  }
}

TEST(ToyTest, ObservationsClusterAroundStateMeans) {
  prob::Rng rng(6);
  auto data = GenerateToyDataset(0.025, 100, 6, rng);
  for (const auto& seq : data) {
    for (size_t t = 0; t < seq.length(); ++t) {
      double expected = static_cast<double>(seq.labels[t] + 1);
      EXPECT_NEAR(seq.obs[t], expected, 0.2);  // 8 sigma
    }
  }
}

TEST(ToyTest, RandomInitIsValidModel) {
  prob::Rng rng(7);
  hmm::HmmModel<double> m = ToyRandomInit(rng);
  m.Validate();
  EXPECT_EQ(m.num_states(), kToyStates);
}

// ------------------------------------------------------------- PosCorpus ---

TEST(PosCorpusTest, PaperTableHasFifteenMergedTags) {
  const auto& table = PaperPosTagTable();
  ASSERT_EQ(table.size(), kNumPosTags);
  // Spot-check the Table-2 sums.
  EXPECT_EQ(table[0].paper_frequency, 28866);   // NOUN block
  EXPECT_EQ(table[4].paper_frequency, 927);     // MODAL
  EXPECT_EQ(table[10].paper_frequency, 3);      // INTJ
  int total = 0;
  for (const auto& row : table) total += row.paper_frequency;
  EXPECT_EQ(total, 93636);
}

PosCorpusOptions SmallCorpusOptions() {
  PosCorpusOptions opts;
  opts.num_sentences = 300;
  opts.vocab_size = 600;
  opts.seed = 11;
  return opts;
}

TEST(PosCorpusTest, ShapesAndRanges) {
  PosCorpus corpus = GeneratePosCorpus(SmallCorpusOptions());
  EXPECT_EQ(corpus.sentences.size(), 300u);
  EXPECT_EQ(corpus.tag_names.size(), kNumPosTags);
  for (const auto& sent : corpus.sentences) {
    ASSERT_TRUE(sent.labeled());
    EXPECT_GE(sent.length(), 2u);
    EXPECT_LE(sent.length(), 250u);
    for (size_t t = 0; t < sent.length(); ++t) {
      EXPECT_GE(sent.obs[t], 0);
      EXPECT_LT(static_cast<size_t>(sent.obs[t]), corpus.vocab_size);
      EXPECT_GE(sent.labels[t], 0);
      EXPECT_LT(static_cast<size_t>(sent.labels[t]), kNumPosTags);
    }
  }
}

TEST(PosCorpusTest, TagFrequenciesTrackPaperProfile) {
  PosCorpusOptions opts = SmallCorpusOptions();
  opts.num_sentences = 1500;
  PosCorpus corpus = GeneratePosCorpus(opts);
  eval::LabelSequences labels;
  for (const auto& s : corpus.sentences) labels.push_back(s.labels);
  linalg::Vector hist = eval::StateHistogram(labels, kNumPosTags);
  hist.NormalizeToSimplex();

  const auto& table = PaperPosTagTable();
  double total = 93636.0;
  // The big classes must land near the paper's shares; NOUN is the heaviest.
  EXPECT_EQ(hist.argmax(), 0u);
  for (size_t i = 0; i < kNumPosTags; ++i) {
    double target = table[i].paper_frequency / total;
    if (target > 0.02) {
      EXPECT_NEAR(hist[i], target, 0.6 * target + 0.01)
          << "tag " << table[i].name;
    }
  }
}

TEST(PosCorpusTest, GroundTruthTransitionsEncodeLinguistics) {
  prob::Rng rng(12);
  PosCorpusOptions opts = SmallCorpusOptions();
  hmm::HmmModel<int> gt = BuildPosGroundTruth(opts, rng);
  // DET -> NOUN must dominate DET -> VERB (indices: NOUN 0, VERB 5, DET 6).
  EXPECT_GT(gt.a(6, 0), 3.0 * gt.a(6, 5));
  // MODAL (4) -> VERB (5) is the strongest MODAL transition.
  EXPECT_EQ(gt.a.Row(4).argmax(), 5u);
  EXPECT_TRUE(gt.a.IsRowStochastic(1e-9));
}

TEST(PosCorpusTest, EmissionsHaveLongTailAndAmbiguity) {
  prob::Rng rng(13);
  PosCorpusOptions opts = SmallCorpusOptions();
  hmm::HmmModel<int> gt = BuildPosGroundTruth(opts, rng);
  auto* em = dynamic_cast<prob::CategoricalEmission*>(gt.emission.get());
  ASSERT_NE(em, nullptr);
  // The shared ambiguous block (first 10% of ids) has mass under every tag.
  size_t shared = opts.vocab_size / 10;
  for (size_t tag = 0; tag < kNumPosTags; ++tag) {
    double shared_mass = 0.0;
    for (size_t w = 0; w < shared; ++w) shared_mass += em->b()(tag, w);
    EXPECT_NEAR(shared_mass, opts.ambiguity, 0.02) << "tag " << tag;
  }
}

TEST(PosCorpusTest, DeterministicForSeed) {
  PosCorpus a = GeneratePosCorpus(SmallCorpusOptions());
  PosCorpus b = GeneratePosCorpus(SmallCorpusOptions());
  ASSERT_EQ(a.sentences.size(), b.sentences.size());
  for (size_t s = 0; s < a.sentences.size(); ++s) {
    EXPECT_EQ(a.sentences[s].obs, b.sentences[s].obs);
  }
}

// ------------------------------------------------------------------- OCR ---

TEST(OcrTest, GlyphTemplatesWellFormed) {
  std::set<prob::BinaryObs> distinct;
  for (size_t l = 0; l < kNumLetters; ++l) {
    const prob::BinaryObs& g = GlyphTemplate(l);
    ASSERT_EQ(g.size(), kGlyphDims);
    size_t on = 0;
    for (uint8_t px : g) {
      ASSERT_LE(px, 1);
      on += px;
    }
    EXPECT_GT(on, 8u) << "letter " << LetterChar(static_cast<int>(l))
                      << " too sparse";
    EXPECT_LT(on, kGlyphDims / 2) << "letter too dense";
    distinct.insert(g);
  }
  EXPECT_EQ(distinct.size(), kNumLetters);  // all glyphs distinct
}

TEST(OcrTest, GlyphsMutuallyDistinguishable) {
  // Pairwise Hamming distance must exceed the expected noise flips so the
  // OCR task is well-posed at the default noise level.
  for (size_t a = 0; a < kNumLetters; ++a) {
    for (size_t b = a + 1; b < kNumLetters; ++b) {
      const auto& ga = GlyphTemplate(a);
      const auto& gb = GlyphTemplate(b);
      size_t hamming = 0;
      for (size_t d = 0; d < kGlyphDims; ++d) hamming += ga[d] != gb[d];
      EXPECT_GE(hamming, 8u) << LetterChar(static_cast<int>(a)) << " vs "
                             << LetterChar(static_cast<int>(b));
    }
  }
}

TEST(OcrTest, WordListCoversPaperProperties) {
  const auto& words = WordList();
  EXPECT_GT(words.size(), 300u);
  size_t min_len = 100, max_len = 0;
  std::set<char> letters;
  for (const auto& w : words) {
    min_len = std::min(min_len, w.size());
    max_len = std::max(max_len, w.size());
    for (char c : w) {
      ASSERT_GE(c, 'a');
      ASSERT_LE(c, 'z');
      letters.insert(c);
    }
  }
  EXPECT_EQ(min_len, 1u);   // paper: word lengths 1..14
  EXPECT_EQ(max_len, 14u);
  EXPECT_EQ(letters.size(), 26u);  // every letter appears
  // Table-3 words present.
  EXPECT_NE(std::find(words.begin(), words.end(), "embraces"), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), "commanding"), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), "volcanic"), words.end());
}

TEST(OcrTest, RenderWordNoiseFreeMatchesTemplates) {
  OcrOptions opts;
  opts.pixel_flip = 0.0;
  opts.max_jitter = 0;
  prob::Rng rng(14);
  auto seq = RenderWord("cab", opts, rng);
  ASSERT_EQ(seq.length(), 3u);
  EXPECT_EQ(seq.obs[0], GlyphTemplate(2));   // c
  EXPECT_EQ(seq.obs[1], GlyphTemplate(0));   // a
  EXPECT_EQ(seq.obs[2], GlyphTemplate(1));   // b
  EXPECT_EQ(LabelsToWord(seq.labels), "cab");
}

TEST(OcrTest, NoiseFlipsExpectedFraction) {
  OcrOptions opts;
  opts.pixel_flip = 0.1;
  opts.max_jitter = 0;
  prob::Rng rng(15);
  size_t flips = 0, total = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto seq = RenderWord("e", opts, rng);
    const auto& tmpl = GlyphTemplate(4);
    for (size_t d = 0; d < kGlyphDims; ++d) {
      flips += seq.obs[0][d] != tmpl[d];
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(flips) / total, 0.1, 0.01);
}

TEST(OcrTest, DatasetShapes) {
  OcrOptions opts;
  opts.num_words = 200;
  OcrDataset ds = GenerateOcrDataset(opts);
  EXPECT_EQ(ds.words.size(), 200u);
  for (const auto& w : ds.words) {
    ASSERT_TRUE(w.labeled());
    EXPECT_GE(w.length(), 1u);
    EXPECT_LE(w.length(), 14u);
    for (const auto& o : w.obs) EXPECT_EQ(o.size(), kGlyphDims);
  }
}

TEST(OcrTest, DatasetDeterministicForSeed) {
  OcrOptions opts;
  opts.num_words = 50;
  OcrDataset a = GenerateOcrDataset(opts);
  OcrDataset b = GenerateOcrDataset(opts);
  ASSERT_EQ(a.words.size(), b.words.size());
  for (size_t i = 0; i < a.words.size(); ++i) {
    EXPECT_EQ(a.words[i].labels, b.words[i].labels);
    EXPECT_EQ(a.words[i].obs, b.words[i].obs);
  }
}

TEST(OcrTest, AsciiRenderingRoundTrip) {
  const auto& g = GlyphTemplate(0);
  std::string art = RenderGlyphAscii(g);
  // 16 lines of 8 chars + newlines.
  EXPECT_EQ(art.size(), (kGlyphCols + 1) * kGlyphRows);
  size_t hashes = 0;
  for (char c : art) hashes += c == '#';
  size_t on = 0;
  for (uint8_t px : g) on += px;
  EXPECT_EQ(hashes, on);
}

TEST(OcrTest, WordAsciiHasSeparators) {
  std::vector<prob::BinaryObs> glyphs = {GlyphTemplate(0), GlyphTemplate(1)};
  std::string art = RenderWordAscii(glyphs);
  // Each of the 16 lines: 8 + 1 + 8 chars + newline.
  EXPECT_EQ(art.size(), (2 * kGlyphCols + 2) * kGlyphRows);
}

TEST(OcrTest, BigramStructurePresent) {
  // The paper highlights that 'q' is nearly always followed by 'u' in
  // English; our sampled corpus must reflect real bigram structure. Check a
  // softer universal: 'th' is a frequent bigram, 'zz' (nearly) absent.
  OcrOptions opts;
  opts.num_words = 3000;
  OcrDataset ds = GenerateOcrDataset(opts);
  size_t th = 0, zz = 0, total = 0;
  for (const auto& w : ds.words) {
    for (size_t t = 1; t < w.length(); ++t) {
      ++total;
      if (w.labels[t - 1] == LetterIndex('t') &&
          w.labels[t] == LetterIndex('h')) {
        ++th;
      }
      if (w.labels[t - 1] == LetterIndex('z') &&
          w.labels[t] == LetterIndex('z')) {
        ++zz;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(th, 20u);
  EXPECT_EQ(zz, 0u);
}

}  // namespace
}  // namespace dhmm::data
