// Binary model store coverage: CRC-32C vectors, byte-exact round trips for
// every emission family, an exhaustive corruption grid (every truncation
// prefix, single-bit flips across the whole image, stale sequence numbers,
// torn dual-slot publishes), and the serve-layer failsafe: a reload from a
// corrupt slot keeps the previous snapshot serving, bitwise unchanged.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/toy.h"
#include "hmm/model.h"
#include "obs/metrics.h"
#include "hmm/sampler.h"
#include "hmm/serialization.h"
#include "prob/bernoulli_emission.h"
#include "prob/categorical_emission.h"
#include "prob/gaussian_emission.h"
#include "prob/gmm_emission.h"
#include "prob/rng.h"
#include "serve/decode_service.h"
#include "serve/model_registry.h"
#include "store/crc32c.h"
#include "store/dual_slot.h"
#include "store/model_codec.h"
#include "store/model_store.h"

namespace dhmm {
namespace {

// ---------------------------------------------------------------------------
// Fixtures and helpers

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dhmm_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->line()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string DirPath(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

void WriteBytes(const std::string& path, const std::vector<unsigned char>& b) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(b.data()),
           static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(os.good());
}

std::vector<unsigned char> ReadBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(is),
                                    std::istreambuf_iterator<char>());
}

hmm::HmmModel<double> GaussianModel(uint64_t seed) {
  prob::Rng rng(seed);
  return data::ToyRandomInit(rng);
}

hmm::HmmModel<int> CategoricalModel(uint64_t seed) {
  prob::Rng rng(seed);
  return hmm::HmmModel<int>(
      rng.DirichletSymmetric(4, 2.0), rng.RandomStochasticMatrix(4, 4, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(4, 12, rng)));
}

hmm::HmmModel<prob::BinaryObs> BernoulliModel(uint64_t seed) {
  prob::Rng rng(seed);
  return hmm::HmmModel<prob::BinaryObs>(
      rng.DirichletSymmetric(3, 2.0), rng.RandomStochasticMatrix(3, 3, 2.0),
      std::make_unique<prob::BernoulliEmission>(
          prob::BernoulliEmission::RandomInit(3, 5, rng)));
}

hmm::HmmModel<double> GmmModel(uint64_t seed) {
  prob::Rng rng(seed);
  return hmm::HmmModel<double>(
      rng.DirichletSymmetric(3, 2.0), rng.RandomStochasticMatrix(3, 3, 2.0),
      std::make_unique<prob::GmmEmission>(
          prob::GmmEmission::RandomInit(3, 2, rng)));
}

bool BytesEqual(const double* a, const double* b, size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

bool CoreEqual(const linalg::Vector& pi_a, const linalg::Matrix& a_a,
               const linalg::Vector& pi_b, const linalg::Matrix& a_b) {
  return pi_a.size() == pi_b.size() && a_a.rows() == a_b.rows() &&
         a_a.cols() == a_b.cols() &&
         BytesEqual(pi_a.data(), pi_b.data(), pi_a.size()) &&
         BytesEqual(a_a.data(), a_b.data(), a_a.rows() * a_a.cols());
}

template <typename Obs>
std::vector<unsigned char> BuildModelImage(const hmm::HmmModel<Obs>& m,
                                           uint64_t seq) {
  // Same section list WriteModel assembles, but kept in memory so
  // corruption tests can flip bits without rewriting files from scratch.
  const std::string tmp =
      (std::filesystem::temp_directory_path() / "dhmm_store_img.dhmms")
          .string();
  EXPECT_TRUE(store::WriteModel(m, seq, tmp).ok());
  std::vector<unsigned char> image = ReadBytes(tmp);
  std::filesystem::remove(tmp);
  return image;
}

// ---------------------------------------------------------------------------
// CRC-32C

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC-32C check value (RFC 3720 / every iSCSI test suite).
  EXPECT_EQ(store::Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, EmptyAndChaining) {
  EXPECT_EQ(store::Crc32c("", 0), 0u);
  const char* s = "123456789";
  const uint32_t head = store::Crc32c(s, 4);
  EXPECT_EQ(store::Crc32c(s + 4, 5, head), store::Crc32c(s, 9));
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  unsigned char buf[64];
  for (size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<unsigned char>(i * 37 + 11);
  }
  const uint32_t clean = store::Crc32c(buf, sizeof(buf));
  for (size_t bit = 0; bit < sizeof(buf) * 8; ++bit) {
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    EXPECT_NE(store::Crc32c(buf, sizeof(buf)), clean) << "bit " << bit;
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  }
}

// ---------------------------------------------------------------------------
// Round trips

TEST_F(StoreTest, GaussianRoundTripBitExact) {
  const auto m = GaussianModel(11);
  ASSERT_TRUE(store::WriteModel(m, 7, Path("m.dhmms")).ok());

  auto reader = store::ModelStoreReader::Open(Path("m.dhmms"));
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_EQ(reader.value().sequence_number(), 7u);
  EXPECT_EQ(reader.value().num_states(), m.num_states());
  ASSERT_TRUE(reader.value().VerifyAllSections().ok());

  auto r = store::ReadModel<double>(reader.value());
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(CoreEqual(m.pi, m.a, r.value().pi, r.value().a));
  const auto& g0 = dynamic_cast<const prob::GaussianEmission&>(*m.emission);
  const auto& g1 =
      dynamic_cast<const prob::GaussianEmission&>(*r.value().emission);
  EXPECT_TRUE(BytesEqual(g0.mu().data(), g1.mu().data(), g0.mu().size()));
  EXPECT_TRUE(
      BytesEqual(g0.sigma().data(), g1.sigma().data(), g0.sigma().size()));
  EXPECT_EQ(g0.sigma_floor(), g1.sigma_floor());
}

TEST_F(StoreTest, CategoricalRoundTripBitExact) {
  const auto m = CategoricalModel(12);
  ASSERT_TRUE(store::WriteModel(m, 1, Path("m.dhmms")).ok());
  auto r = store::ReadModelFromFile<int>(Path("m.dhmms"));
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(CoreEqual(m.pi, m.a, r.value().pi, r.value().a));
  const auto& c0 = dynamic_cast<const prob::CategoricalEmission&>(*m.emission);
  const auto& c1 =
      dynamic_cast<const prob::CategoricalEmission&>(*r.value().emission);
  ASSERT_EQ(c0.b().cols(), c1.b().cols());
  EXPECT_TRUE(BytesEqual(c0.b().data(), c1.b().data(),
                         c0.b().rows() * c0.b().cols()));
  EXPECT_EQ(c0.pseudo_count(), c1.pseudo_count());
}

TEST_F(StoreTest, BernoulliRoundTripBitExact) {
  const auto m = BernoulliModel(13);
  ASSERT_TRUE(store::WriteModel(m, 1, Path("m.dhmms")).ok());
  auto r = store::ReadModelFromFile<prob::BinaryObs>(Path("m.dhmms"));
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(CoreEqual(m.pi, m.a, r.value().pi, r.value().a));
  const auto& b0 = dynamic_cast<const prob::BernoulliEmission&>(*m.emission);
  const auto& b1 =
      dynamic_cast<const prob::BernoulliEmission&>(*r.value().emission);
  ASSERT_EQ(b0.p().cols(), b1.p().cols());
  EXPECT_TRUE(BytesEqual(b0.p().data(), b1.p().data(),
                         b0.p().rows() * b0.p().cols()));
  EXPECT_EQ(b0.p_floor(), b1.p_floor());
}

TEST_F(StoreTest, GmmRoundTripBitExact) {
  const auto m = GmmModel(14);
  ASSERT_TRUE(store::WriteModel(m, 1, Path("m.dhmms")).ok());
  auto r = store::ReadModelFromFile<double>(Path("m.dhmms"));
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(CoreEqual(m.pi, m.a, r.value().pi, r.value().a));
  const auto& g0 = dynamic_cast<const prob::GmmEmission&>(*m.emission);
  const auto& g1 = dynamic_cast<const prob::GmmEmission&>(*r.value().emission);
  ASSERT_EQ(g0.weights().cols(), g1.weights().cols());
  const size_t n = g0.weights().rows() * g0.weights().cols();
  EXPECT_TRUE(BytesEqual(g0.weights().data(), g1.weights().data(), n));
  EXPECT_TRUE(BytesEqual(g0.mu().data(), g1.mu().data(), n));
  EXPECT_TRUE(BytesEqual(g0.sigma().data(), g1.sigma().data(), n));
  EXPECT_EQ(g0.sigma_floor(), g1.sigma_floor());
}

TEST_F(StoreTest, WrongObservationTypeRejected) {
  ASSERT_TRUE(store::WriteModel(GaussianModel(15), 1, Path("m.dhmms")).ok());
  auto r = store::ReadModelFromFile<int>(Path("m.dhmms"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(StoreTest, OpenIsHeaderOnlyAndSectionsVerifyLazily) {
  ASSERT_TRUE(store::WriteModel(GaussianModel(16), 1, Path("m.dhmms")).ok());
  std::vector<unsigned char> image = ReadBytes(Path("m.dhmms"));
  // Corrupt the LAST byte of the file (inside some section payload, far
  // from header and manifest): Open must still succeed — it promises
  // O(header) work — while full verification must catch it.
  image.back() ^= 0x01;
  WriteBytes(Path("m.dhmms"), image);
  auto reader = store::ModelStoreReader::Open(Path("m.dhmms"));
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_FALSE(reader.value().VerifyAllSections().ok());
}

// ---------------------------------------------------------------------------
// Corruption grid

TEST_F(StoreTest, EveryTruncationPrefixRejected) {
  const auto m = GaussianModel(17);
  const std::vector<unsigned char> image = BuildModelImage(m, 3);
  ASSERT_GT(image.size(), store::kStoreHeaderBytes);
  for (size_t len = 0; len < image.size(); ++len) {
    WriteBytes(Path("t.dhmms"),
               std::vector<unsigned char>(image.begin(),
                                          image.begin() + len));
    auto reader = store::ModelStoreReader::Open(Path("t.dhmms"));
    if (reader.ok()) {
      // The header region can be self-consistent before the payload
      // exists only if the recorded file size matched — it cannot, since
      // the file is shorter than the full image. Belt and braces: if Open
      // somehow passed, section verification must fail.
      EXPECT_FALSE(reader.value().VerifyAllSections().ok())
          << "truncation at " << len << " bytes undetected";
    } else {
      EXPECT_EQ(reader.status().code(), StatusCode::kIOError)
          << "truncation at " << len;
    }
  }
}

TEST_F(StoreTest, EveryByteBitFlipDetectedOrHarmless) {
  const auto m = GaussianModel(18);
  const std::vector<unsigned char> image = BuildModelImage(m, 3);
  size_t detected = 0;
  for (size_t i = 0; i < image.size(); ++i) {
    std::vector<unsigned char> bad = image;
    bad[i] ^= 0x10;
    WriteBytes(Path("b.dhmms"), bad);
    auto r = store::ReadModelFromFile<double>(Path("b.dhmms"));
    if (!r.ok()) {
      ++detected;
      continue;
    }
    // Alignment padding between sections is the only region outside every
    // checksum; a flip there must leave the decoded model bitwise
    // identical to the original.
    EXPECT_TRUE(CoreEqual(m.pi, m.a, r.value().pi, r.value().a))
        << "undetected corrupting flip at byte " << i;
    const auto& g0 = dynamic_cast<const prob::GaussianEmission&>(*m.emission);
    const auto& g1 =
        dynamic_cast<const prob::GaussianEmission&>(*r.value().emission);
    EXPECT_TRUE(BytesEqual(g0.mu().data(), g1.mu().data(), g0.mu().size()))
        << "undetected corrupting flip at byte " << i;
  }
  // Every byte of header, manifest, and payloads is covered by a CRC; only
  // padding escapes. Sanity-check the grid actually exercised detection.
  EXPECT_GT(detected, image.size() / 2);
}

TEST_F(StoreTest, HeaderFieldCorruptionsRejectedTyped) {
  const std::vector<unsigned char> image = BuildModelImage(GaussianModel(19), 3);

  struct Case {
    size_t offset;
    const char* what;
  };
  // One poke per validated header field; every one must be a typed
  // IOError, never an abort or a successful open.
  for (const Case& c : {Case{0, "magic"}, Case{8, "version"},
                        Case{12, "flags"}, Case{28, "num_states"},
                        Case{32, "section_count"}, Case{36, "manifest crc"},
                        Case{40, "file size"}, Case{50, "reserved"},
                        Case{60, "header crc"},
                        Case{store::kStoreHeaderBytes, "manifest"}}) {
    std::vector<unsigned char> bad = image;
    bad[c.offset] ^= 0xFF;
    WriteBytes(Path("h.dhmms"), bad);
    auto reader = store::ModelStoreReader::Open(Path("h.dhmms"));
    ASSERT_FALSE(reader.ok()) << c.what;
    EXPECT_EQ(reader.status().code(), StatusCode::kIOError) << c.what;
  }
}

TEST_F(StoreTest, MissingFileAndEmptyFile) {
  EXPECT_FALSE(store::ModelStoreReader::Open(Path("absent.dhmms")).ok());
  WriteBytes(Path("empty.dhmms"), {});
  EXPECT_FALSE(store::ModelStoreReader::Open(Path("empty.dhmms")).ok());
}

// ---------------------------------------------------------------------------
// Dual-slot store

TEST_F(StoreTest, DualSlotPublishAndReopen) {
  const std::string dir = DirPath("slots");
  auto s = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.value().has_model());
  EXPECT_FALSE(s.value().Load<double>().ok());

  // Process-wide counters: assert exact deltas around the two publishes.
  obs::Counter* publishes =
      obs::Registry::Global().GetCounter("store.publishes");
  const uint64_t publishes_before = publishes->Value();

  const auto m1 = GaussianModel(21);
  const auto m2 = GaussianModel(22);
  ASSERT_TRUE(s.value().Publish(m1).ok());
  EXPECT_EQ(s.value().sequence_number(), 1u);
  ASSERT_TRUE(s.value().Publish(m2).ok());
  EXPECT_EQ(s.value().sequence_number(), 2u);
  EXPECT_EQ(publishes->Value() - publishes_before, 2u);

  // A fresh Open (new process, conceptually) sees the latest publish.
  auto reopened = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().sequence_number(), 2u);
  auto loaded = reopened.value().Load<double>();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(CoreEqual(m2.pi, m2.a, loaded.value().pi, loaded.value().a));
}

TEST_F(StoreTest, CorruptActiveSlotFallsBackToPrevious) {
  const std::string dir = DirPath("slots");
  auto s = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(s.ok());
  const auto m1 = GaussianModel(23);
  const auto m2 = GaussianModel(24);
  ASSERT_TRUE(s.value().Publish(m1).ok());  // slot A, seq 1
  ASSERT_TRUE(s.value().Publish(m2).ok());  // slot B, seq 2, active

  // Flip one bit inside the active slot's payload.
  std::vector<unsigned char> bytes = ReadBytes(dir + "/slot_b.dhmms");
  bytes.back() ^= 0x04;
  WriteBytes(dir + "/slot_b.dhmms", bytes);

  // The survived failover is observable: the reopen counts the corrupt
  // slot it skipped and the active-slot fallback (manifest said B, the
  // store chose A).
  obs::Registry& reg = obs::Registry::Global();
  const uint64_t crc_before =
      reg.GetCounter("store.crc_failures_survived")->Value();
  const uint64_t fallback_before =
      reg.GetCounter("store.fallback_opens")->Value();

  auto reopened = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened.value().has_model());
  EXPECT_EQ(reopened.value().sequence_number(), 1u);
  auto loaded = reopened.value().Load<double>();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(CoreEqual(m1.pi, m1.a, loaded.value().pi, loaded.value().a));
  EXPECT_EQ(reg.GetCounter("store.crc_failures_survived")->Value() -
                crc_before,
            1u);
  EXPECT_EQ(reg.GetCounter("store.fallback_opens")->Value() -
                fallback_before,
            1u);
}

TEST_F(StoreTest, TornPublishNewerSlotWinsOverStaleManifest) {
  const std::string dir = DirPath("slots");
  auto s = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(s.ok());
  const auto m1 = GaussianModel(25);
  ASSERT_TRUE(s.value().Publish(m1).ok());  // slot A, seq 1; manifest -> A

  // Simulate a publisher that crashed after the slot write but before the
  // manifest flip: slot B carries seq 2, the manifest still points at A.
  const auto m2 = GaussianModel(26);
  ASSERT_TRUE(store::WriteModel(m2, 2, dir + "/slot_b.dhmms").ok());

  auto reopened = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().sequence_number(), 2u);
  auto loaded = reopened.value().Load<double>();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(CoreEqual(m2.pi, m2.a, loaded.value().pi, loaded.value().a));
}

TEST_F(StoreTest, StaleSequenceNumberLosesToNewerValidSlot) {
  const std::string dir = DirPath("slots");
  auto s = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(s.ok());
  // Hand-write slots out of order: A at seq 9, B at seq 4.
  const auto m_new = GaussianModel(27);
  const auto m_old = GaussianModel(28);
  ASSERT_TRUE(store::WriteModel(m_new, 9, dir + "/slot_a.dhmms").ok());
  ASSERT_TRUE(store::WriteModel(m_old, 4, dir + "/slot_b.dhmms").ok());

  auto reopened = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().sequence_number(), 9u);
  // The next publish must target the non-active slot (B).
  EXPECT_EQ(reopened.value().publish_slot(), 1);
}

TEST_F(StoreTest, CorruptManifestIsOnlyAHint) {
  const std::string dir = DirPath("slots");
  auto s = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(s.ok());
  const auto m1 = GaussianModel(29);
  ASSERT_TRUE(s.value().Publish(m1).ok());

  WriteBytes(dir + "/MANIFEST", {'g', 'a', 'r', 'b', 'a', 'g', 'e'});
  auto reopened = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().sequence_number(), 1u);
  EXPECT_TRUE(reopened.value().Load<double>().ok());
}

TEST_F(StoreTest, BothSlotsCorruptMeansNoModel) {
  const std::string dir = DirPath("slots");
  auto s = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s.value().Publish(GaussianModel(30)).ok());
  ASSERT_TRUE(s.value().Publish(GaussianModel(31)).ok());
  for (const char* slot : {"slot_a.dhmms", "slot_b.dhmms"}) {
    std::vector<unsigned char> bytes = ReadBytes(DirPath("slots") +
                                                 "/" + slot);
    bytes[bytes.size() / 2] ^= 0x20;
    WriteBytes(DirPath("slots") + "/" + slot, bytes);
  }
  auto reopened = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(reopened.value().has_model());
  auto loaded = reopened.value().Load<double>();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// LoadAnyModel routing

TEST_F(StoreTest, LoadAnyModelRoutesTextBinaryAndDirectory) {
  const auto m = GaussianModel(32);

  ASSERT_TRUE(hmm::SaveHmmToFile(m, Path("text.hmm")).ok());
  auto from_text = store::LoadAnyModel<double>(Path("text.hmm"));
  ASSERT_TRUE(from_text.ok()) << from_text.status().message();

  ASSERT_TRUE(store::WriteModel(m, 1, Path("bin.dhmms")).ok());
  auto from_bin = store::LoadAnyModel<double>(Path("bin.dhmms"));
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().message();
  EXPECT_TRUE(
      CoreEqual(m.pi, m.a, from_bin.value().pi, from_bin.value().a));

  auto slots = store::DualSlotStore::Open(DirPath("slots"));
  ASSERT_TRUE(slots.ok());
  ASSERT_TRUE(slots.value().Publish(m).ok());
  auto from_dir = store::LoadAnyModel<double>(DirPath("slots"));
  ASSERT_TRUE(from_dir.ok()) << from_dir.status().message();
  EXPECT_TRUE(
      CoreEqual(m.pi, m.a, from_dir.value().pi, from_dir.value().a));
}

// ---------------------------------------------------------------------------
// Serve-layer failsafe reload

TEST_F(StoreTest, ReloadFromCorruptStoreKeepsServingBitwiseUnchanged) {
  const auto m = GaussianModel(33);
  serve::DecodeService<double> service(
      std::make_shared<const hmm::HmmModel<double>>(m));

  prob::Rng rng(34);
  hmm::Dataset<double> data = hmm::SampleDataset(m, 1, 40, rng);
  auto before = service.Submit(serve::DecodeKind::kPosterior, data[0].obs);
  const std::vector<int> path_before = before.Wait().path;
  const double value_before = before.Wait().value;
  before.Release();

  // A corrupt binary checkpoint must be rejected...
  ASSERT_TRUE(store::WriteModel(GaussianModel(35), 2, Path("c.dhmms")).ok());
  std::vector<unsigned char> bytes = ReadBytes(Path("c.dhmms"));
  bytes.back() ^= 0x08;
  WriteBytes(Path("c.dhmms"), bytes);
  const uint64_t version = service.model_version();
  Status st = service.ReloadModel(Path("c.dhmms"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(service.model_version(), version);

  // ...and the previous snapshot keeps serving, bitwise unchanged.
  auto after = service.Submit(serve::DecodeKind::kPosterior, data[0].obs);
  EXPECT_EQ(after.Wait().path, path_before);
  EXPECT_EQ(after.Wait().value, value_before);
  after.Release();
}

TEST_F(StoreTest, ReloadFromDualSlotDirWithCorruptActiveSlotServesFallback) {
  const auto m1 = GaussianModel(36);
  const auto m2 = GaussianModel(37);
  const std::string dir = DirPath("slots");
  auto slots = store::DualSlotStore::Open(dir);
  ASSERT_TRUE(slots.ok());
  ASSERT_TRUE(slots.value().Publish(m1).ok());
  ASSERT_TRUE(slots.value().Publish(m2).ok());

  serve::ModelRegistry<double> registry;
  ASSERT_TRUE(registry.RegisterFromFile(1, dir).ok());
  {
    auto svc = registry.Acquire(1);
    ASSERT_TRUE(svc.ok());
    EXPECT_TRUE(CoreEqual(m2.pi, m2.a, svc.value()->ModelSnapshot()->pi,
                          svc.value()->ModelSnapshot()->a));
  }

  // Corrupt the active slot; ReloadModel falls back to the surviving one.
  std::vector<unsigned char> bytes = ReadBytes(dir + "/slot_b.dhmms");
  bytes.back() ^= 0x02;
  WriteBytes(dir + "/slot_b.dhmms", bytes);
  ASSERT_TRUE(registry.ReloadModel(1).ok());
  auto svc = registry.Acquire(1);
  ASSERT_TRUE(svc.ok());
  EXPECT_TRUE(CoreEqual(m1.pi, m1.a, svc.value()->ModelSnapshot()->pi,
                        svc.value()->ModelSnapshot()->a));
}

}  // namespace
}  // namespace dhmm
