// File-level serialization coverage: disk round trips for every emission
// family, resumability, and rejection of malformed payloads.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "core/dhmm_trainer.h"
#include "data/toy.h"
#include "hmm/sampler.h"
#include "hmm/serialization.h"
#include "hmm/trainer.h"
#include "prob/bernoulli_emission.h"
#include "prob/categorical_emission.h"

namespace dhmm {
namespace {

class SerializationFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("dhmm_serialization_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->line()) +
             ".txt");
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST_F(SerializationFileTest, GaussianDiskRoundTrip) {
  prob::Rng rng(1);
  hmm::HmmModel<double> m = data::ToyRandomInit(rng);
  ASSERT_TRUE(hmm::SaveHmmToFile(m, path()).ok());
  auto r = hmm::LoadHmmFromFile<double>(path());
  ASSERT_TRUE(r.ok());
  prob::Rng data_rng(2);
  hmm::Dataset<double> data = hmm::SampleDataset(m, 5, 6, data_rng);
  EXPECT_NEAR(hmm::DatasetLogLikelihood(r.value(), data),
              hmm::DatasetLogLikelihood(m, data), 1e-9);
}

TEST_F(SerializationFileTest, CategoricalDiskRoundTripBitExact) {
  prob::Rng rng(3);
  hmm::HmmModel<int> m(
      rng.DirichletSymmetric(4, 2.0), rng.RandomStochasticMatrix(4, 4, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(4, 12, rng)));
  ASSERT_TRUE(hmm::SaveHmmToFile(m, path()).ok());
  auto r = hmm::LoadHmmFromFile<int>(path());
  ASSERT_TRUE(r.ok());
  // 17-digit precision round trip: matrices identical to the last bit.
  EXPECT_TRUE(r.value().a == m.a);
}

TEST_F(SerializationFileTest, BernoulliDiskRoundTrip) {
  prob::Rng rng(4);
  hmm::HmmModel<prob::BinaryObs> m(
      rng.DirichletSymmetric(3, 2.0), rng.RandomStochasticMatrix(3, 3, 2.0),
      std::make_unique<prob::BernoulliEmission>(
          prob::BernoulliEmission::RandomInit(3, 16, rng)));
  ASSERT_TRUE(hmm::SaveHmmToFile(m, path()).ok());
  auto r = hmm::LoadHmmFromFile<prob::BinaryObs>(path());
  ASSERT_TRUE(r.ok());
  auto* em = dynamic_cast<prob::BernoulliEmission*>(r.value().emission.get());
  ASSERT_NE(em, nullptr);
  EXPECT_EQ(em->dims(), 16u);
}

TEST_F(SerializationFileTest, ResumedTrainingContinuesImproving) {
  prob::Rng data_rng(5);
  hmm::Dataset<double> data = data::GenerateToyDataset(0.5, 60, 6, data_rng);
  prob::Rng init_rng(6);
  hmm::HmmModel<double> m = data::ToyRandomInit(init_rng);
  core::DiversifiedEmOptions opts;
  opts.alpha = 1.0;
  opts.max_iters = 3;
  core::FitDiversifiedHmm(&m, data, opts);
  double ll_checkpoint = hmm::DatasetLogLikelihood(m, data);

  ASSERT_TRUE(hmm::SaveHmmToFile(m, path()).ok());
  auto r = hmm::LoadHmmFromFile<double>(path());
  ASSERT_TRUE(r.ok());
  hmm::HmmModel<double> resumed = std::move(r).value();
  opts.max_iters = 15;
  core::FitDiversifiedHmm(&resumed, data, opts);
  EXPECT_GE(hmm::DatasetLogLikelihood(resumed, data), ll_checkpoint - 1e-9);
}

TEST_F(SerializationFileTest, MissingFileIsIOError) {
  auto r = hmm::LoadHmmFromFile<double>("/nonexistent/dir/model.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(SerializationRobustnessTest, TruncatedPayloadRejected) {
  prob::Rng rng(7);
  hmm::HmmModel<int> m(
      rng.DirichletSymmetric(3, 2.0), rng.RandomStochasticMatrix(3, 3, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(3, 5, rng)));
  std::stringstream full;
  ASSERT_TRUE(hmm::SaveHmm(m, full).ok());
  std::string text = full.str();
  // Cut the stream at several points that drop whole numbers; every such
  // truncation must fail cleanly. (Trimming a few trailing digit characters
  // is indistinguishable from a shorter final number in a text format, so
  // the cuts stay clear of the last token.)
  for (size_t cut : {text.size() / 4, text.size() / 2, 2 * text.size() / 3}) {
    std::stringstream truncated(text.substr(0, cut));
    auto r = hmm::LoadHmm<int>(truncated);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST_F(SerializationFileTest, AtomicSaveLeavesNoTempResidue) {
  prob::Rng rng(21);
  hmm::HmmModel<double> m = data::ToyRandomInit(rng);
  ASSERT_TRUE(hmm::SaveHmmToFile(m, path()).ok());
  EXPECT_TRUE(std::filesystem::exists(path()));
  EXPECT_FALSE(std::filesystem::exists(path() + ".tmp"));
}

TEST_F(SerializationFileTest, AtomicSaveReplacesPreviousCheckpointWholesale) {
  // Overwriting a checkpoint goes through rename, so a reader polling the
  // path can never observe a mix of old and new bytes.
  prob::Rng rng(22);
  hmm::HmmModel<int> a(
      rng.DirichletSymmetric(3, 2.0), rng.RandomStochasticMatrix(3, 3, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(3, 7, rng)));
  hmm::HmmModel<int> b(
      rng.DirichletSymmetric(4, 2.0), rng.RandomStochasticMatrix(4, 4, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(4, 7, rng)));
  ASSERT_TRUE(hmm::SaveHmmToFile(a, path()).ok());
  ASSERT_TRUE(hmm::SaveHmmToFile(b, path()).ok());
  auto r = hmm::LoadHmmFromFile<int>(path());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_states(), 4u);
  EXPECT_TRUE(r.value().a == b.a);
  EXPECT_FALSE(std::filesystem::exists(path() + ".tmp"));
}

TEST(SerializationRobustnessTest, SaveToUnwritableDirIsIOError) {
  prob::Rng rng(23);
  hmm::HmmModel<double> m = data::ToyRandomInit(rng);
  Status st = hmm::SaveHmmToFile(m, "/nonexistent/dir/model.txt");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(SerializationRobustnessTest, TruncatedStreamAtEveryPrefixFailsCleanly) {
  // A torn checkpoint (the failure the atomic save prevents at the file
  // level) must be rejected with a Status at *every* prefix length — never
  // accepted as a corrupt model and never a process abort. Emission values
  // are chosen so even digit-level truncation of the final token breaks
  // row-stochasticity.
  prob::Rng rng(24);
  hmm::HmmModel<int> m(
      rng.DirichletSymmetric(2, 2.0), rng.RandomStochasticMatrix(2, 2, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          linalg::Matrix{{0.25, 0.75}, {0.75, 0.25}}));
  std::stringstream full;
  ASSERT_TRUE(hmm::SaveHmm(m, full).ok());
  const std::string text = full.str();
  // Cutting inside trailing whitespace leaves every token intact, so only
  // prefixes strictly shorter than the last token's end must fail.
  const size_t last_token_end = text.find_last_not_of(" \n") + 1;
  for (size_t cut = 1; cut < last_token_end; ++cut) {
    std::stringstream truncated(text.substr(0, cut));
    auto r = hmm::LoadHmm<int>(truncated);
    EXPECT_FALSE(r.ok()) << "prefix of length " << cut << " loaded";
  }
  std::stringstream intact(text);
  EXPECT_TRUE(hmm::LoadHmm<int>(intact).ok());
}

TEST(SerializationRobustnessTest, NegativeProbabilityRejected) {
  // Hand-craft a payload with a negative emission probability.
  std::stringstream ss(
      "dhmm-model 1\n2\n0.5 0.5\n0.5 0.5\n0.5 0.5\n"
      "categorical\n2 2 0\n-0.25 1.25\n0.5 0.5\n");
  EXPECT_FALSE(hmm::LoadHmm<int>(ss).ok());
}

TEST(SerializationRobustnessTest, WrongVersionRejected) {
  std::stringstream ss("dhmm-model 9\n2\n");
  EXPECT_FALSE(hmm::LoadHmm<int>(ss).ok());
}

TEST(SerializationRobustnessTest, AbsurdStateCountRejected) {
  // A corrupt header must fail fast instead of sizing an enormous pi / A
  // allocation off attacker-controlled input.
  std::stringstream ss("dhmm-model 1\n999999999\n0.5 0.5\n");
  auto r = hmm::LoadHmm<int>(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(SerializationRobustnessTest, NonStochasticPiRejected) {
  // pi sums to 1.7: previously loaded without complaint and aborted later
  // inside HmmModel::Validate, mid-training.
  std::stringstream ss(
      "dhmm-model 1\n2\n0.9 0.8\n0.5 0.5\n0.5 0.5\n"
      "categorical\n2 2 0\n0.5 0.5\n0.5 0.5\n");
  auto r = hmm::LoadHmm<int>(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationRobustnessTest, NegativePiEntryRejected) {
  std::stringstream ss(
      "dhmm-model 1\n2\n-0.2 1.2\n0.5 0.5\n0.5 0.5\n"
      "categorical\n2 2 0\n0.5 0.5\n0.5 0.5\n");
  auto r = hmm::LoadHmm<int>(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationRobustnessTest, NonStochasticTransitionRowRejected) {
  // Second transition row sums to 1.2.
  std::stringstream ss(
      "dhmm-model 1\n2\n0.5 0.5\n0.5 0.5\n0.7 0.5\n"
      "categorical\n2 2 0\n0.5 0.5\n0.5 0.5\n");
  auto r = hmm::LoadHmm<int>(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationRobustnessTest, EmissionStateMismatchRejected) {
  // Header says 2 states but the categorical payload has 3.
  std::stringstream ss(
      "dhmm-model 1\n2\n0.5 0.5\n0.5 0.5\n0.5 0.5\n"
      "categorical\n3 2 0\n0.5 0.5\n0.5 0.5\n0.5 0.5\n");
  auto r = hmm::LoadHmm<int>(ss);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace dhmm
