// Reproduces Table 1: inferred-state histograms and 1-to-1 labeling
// accuracies of ground truth, HMM, and dHMM on the toy dataset.
// Paper values: accuracy 1 (truth), 0.4117 (HMM), 0.4728 (dHMM); the HMM's
// histogram is highly biased toward one dominant state while the dHMM's
// resembles the near-uniform truth.
#include <cstdio>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Table 1",
                     "toy state frequencies and labeling accuracies");

  const size_t n_seq = static_cast<size_t>(BenchScaled(300, 100));
  // The paper's Table 1 regime (sigma = 0.025): sharp emissions, where the
  // inferred-state quality is limited purely by the local optimum EM lands
  // in — the ground truth decodes perfectly, plain EM collapses states, and
  // the diversity prior partially rescues the collapse.
  bench::ToyRun run = bench::RunToy(/*sigma=*/0.025, n_seq, /*length=*/6,
                                    /*alpha=*/1.0, /*seed=*/42,
                                    /*em_iters=*/60);
  const size_t k = data::kToyStates;

  linalg::Vector hist_truth = eval::StateHistogram(run.truth_paths, k);
  linalg::Vector hist_hmm = eval::StateHistogram(run.hmm_paths, k);
  linalg::Vector hist_dhmm = eval::StateHistogram(run.dhmm_paths, k);

  std::vector<std::string> labels;
  for (size_t i = 0; i < k; ++i) {
    labels.push_back(StrFormat("state %zu", i + 1));
  }

  auto to_std = [](const linalg::Vector& v) {
    return std::vector<double>(v.values().begin(), v.values().end());
  };
  std::printf("--- state histograms (Viterbi decodes) ---\n");
  std::printf("ground-truth parameters:\n%s\n",
              AsciiBarChart(labels, to_std(hist_truth)).c_str());
  std::printf("HMM-learned parameters:\n%s\n",
              AsciiBarChart(labels, to_std(hist_hmm)).c_str());
  std::printf("dHMM-learned parameters:\n%s\n",
              AsciiBarChart(labels, to_std(hist_dhmm)).c_str());

  double acc_truth =
      eval::OneToOneAccuracy(run.truth_paths, run.gold, k).accuracy;
  double acc_hmm = eval::OneToOneAccuracy(run.hmm_paths, run.gold, k).accuracy;
  double acc_dhmm =
      eval::OneToOneAccuracy(run.dhmm_paths, run.gold, k).accuracy;

  TextTable table({"model", "1-to-1 accuracy", "paper value"});
  table.AddRow({"ground-truth", StrFormat("%.4f", acc_truth), "1"});
  table.AddRow({"HMM", StrFormat("%.4f", acc_hmm), "0.4117"});
  table.AddRow({"dHMM", StrFormat("%.4f", acc_dhmm), "0.4728"});
  table.Print();

  std::printf("Expected shape (paper): accuracy(dHMM) > accuracy(HMM); dHMM "
              "histogram closer to truth's near-uniform spread.\n");
  return 0;
}
