// Microbenchmark for the binary model store against the text serializer:
// save, validate-open, full load, dual-slot publish, and the serve-layer
// reload path.
//
// The workload is a large-vocabulary categorical model (k = 50 states,
// 20K symbols — 1M doubles of emission table), where the difference is
// structural: the text loader runs istream extraction over every
// parameter, the store validates in O(header) + one CRC pass and memcpys
// payloads straight out of the mapped file. BM_StoreOpen in particular
// should be independent of model size — that is the "no full parse on the
// reload path" contract the serve layer relies on.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>

#include "hmm/model.h"
#include "hmm/serialization.h"
#include "prob/categorical_emission.h"
#include "prob/rng.h"
#include "serve/decode_service.h"
#include "store/dual_slot.h"
#include "store/model_codec.h"
#include "store/model_store.h"
#include "util/bench_env.h"
#include "util/check.h"

namespace {

using namespace dhmm;

hmm::HmmModel<int> MakeModel() {
  const size_t k = static_cast<size_t>(BenchScaled(50, 8));
  const size_t vocab = static_cast<size_t>(BenchScaled(20000, 300));
  prob::Rng rng(97);
  return hmm::HmmModel<int>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(k, vocab, rng)));
}

std::string BenchPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void BM_TextSave(benchmark::State& state) {
  const hmm::HmmModel<int> m = MakeModel();
  const std::string path = BenchPath("dhmm_bench_store.txt");
  for (auto _ : state) {
    DHMM_CHECK(hmm::SaveHmmToFile(m, path).ok());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_TextSave)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StoreWrite(benchmark::State& state) {
  const hmm::HmmModel<int> m = MakeModel();
  const std::string path = BenchPath("dhmm_bench_store.dhmms");
  for (auto _ : state) {
    DHMM_CHECK(store::WriteModel(m, 1, path).ok());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_StoreWrite)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_TextLoad(benchmark::State& state) {
  const hmm::HmmModel<int> m = MakeModel();
  const std::string path = BenchPath("dhmm_bench_store.txt");
  DHMM_CHECK(hmm::SaveHmmToFile(m, path).ok());
  for (auto _ : state) {
    auto r = hmm::LoadHmmFromFile<int>(path);
    DHMM_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value().pi.data());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_TextLoad)->Unit(benchmark::kMillisecond)->UseRealTime();

// Open + header/manifest validation only — what a registry pays to decide
// a checkpoint is worth swapping in. Should not scale with model size.
void BM_StoreOpen(benchmark::State& state) {
  const hmm::HmmModel<int> m = MakeModel();
  const std::string path = BenchPath("dhmm_bench_store.dhmms");
  DHMM_CHECK(store::WriteModel(m, 1, path).ok());
  for (auto _ : state) {
    auto r = store::ModelStoreReader::Open(path);
    DHMM_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value().sequence_number());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_StoreOpen)->UseRealTime();

// Full integrity pass + materialization — the whole binary reload.
void BM_StoreReadModel(benchmark::State& state) {
  const hmm::HmmModel<int> m = MakeModel();
  const std::string path = BenchPath("dhmm_bench_store.dhmms");
  DHMM_CHECK(store::WriteModel(m, 1, path).ok());
  for (auto _ : state) {
    auto r = store::ReadModelFromFile<int>(path);
    DHMM_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value().pi.data());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_StoreReadModel)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DualSlotPublish(benchmark::State& state) {
  const hmm::HmmModel<int> m = MakeModel();
  const std::string dir = BenchPath("dhmm_bench_slots");
  auto slots = store::DualSlotStore::Open(dir);
  DHMM_CHECK(slots.ok());
  for (auto _ : state) {
    DHMM_CHECK(slots.value().Publish(m).ok());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_DualSlotPublish)->Unit(benchmark::kMillisecond)->UseRealTime();

// Hot-reload latency through a live DecodeService, text vs. binary — the
// serving thread pays this while requests keep flowing.
void BM_ServiceReload(benchmark::State& state) {
  const bool binary = state.range(0) != 0;
  const hmm::HmmModel<int> m = MakeModel();
  const std::string path =
      BenchPath(binary ? "dhmm_bench_reload.dhmms" : "dhmm_bench_reload.txt");
  if (binary) {
    DHMM_CHECK(store::WriteModel(m, 1, path).ok());
  } else {
    DHMM_CHECK(hmm::SaveHmmToFile(m, path).ok());
  }
  serve::DecodeService<int> service(
      std::make_shared<const hmm::HmmModel<int>>(m));
  for (auto _ : state) {
    DHMM_CHECK(service.ReloadModel(path).ok());
  }
  state.counters["model_version"] =
      static_cast<double>(service.model_version());
  std::filesystem::remove(path);
}
BENCHMARK(BM_ServiceReload)
    ->ArgNames({"binary"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
