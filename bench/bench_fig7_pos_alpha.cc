// Reproduces Fig. 7: unsupervised PoS tagging 1-to-1 accuracy as a function
// of the diversity weight alpha in {0, 0.1, 1, 10, 100, 1000}.
// Paper values: HMM (alpha=0) 0.4475; dHMM peaks at 0.4688 with alpha = 100;
// sharp drop at alpha = 1000. Absolute accuracies differ on the synthetic
// corpus; the shape to check is the rise to an interior optimum and the
// over-regularization cliff.
#include <cstdio>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Fig. 7", "PoS accuracy vs diversity weight alpha");

  // The diversity prior pays off when lexical ambiguity makes plain EM
  // collapse transition rows; we raise the corpus ambiguity for this sweep
  // (on the default low-ambiguity corpus EM does not collapse and the curve
  // is flat until the over-regularization cliff).
  data::PosCorpusOptions copts = bench::PosBenchCorpus();
  copts.ambiguity = 0.30;
  data::PosCorpus corpus = GeneratePosCorpus(copts);
  const int em_iters = BenchScaled(60, 20);
  const int restarts = BenchScaled(3, 1);

  // The paper sweeps {0, 0.1, 1, 10, 100, 1000}. Our corpus is ~4x smaller
  // than WSJ, so the prior-vs-likelihood balance tips at proportionally
  // smaller alpha (interior optimum near 10 rather than 100).
  std::vector<double> alphas = {0.0, 0.1, 1.0, 10.0, 100.0, 1000.0};
  if (BenchFastMode()) alphas = {0.0, 10.0, 1000.0};

  std::vector<double> xs, acc_dhmm, acc_hmm_line;
  double hmm_accuracy = 0.0;
  TextTable table({"alpha", "1-to-1 accuracy", "many-to-1", "avg diversity",
                   "log det"});
  for (size_t i = 0; i < alphas.size(); ++i) {
    bench::PosRun run = bench::RunPos(corpus, alphas[i], /*seed=*/5,
                                      em_iters, restarts);
    if (alphas[i] == 0.0) hmm_accuracy = run.accuracy_1to1;
    xs.push_back(static_cast<double>(i));
    acc_dhmm.push_back(run.accuracy_1to1);
    table.AddRow({StrFormat("%g", alphas[i]),
                  StrFormat("%.4f", run.accuracy_1to1),
                  StrFormat("%.4f", run.accuracy_m2o),
                  StrFormat("%.4f", run.avg_diversity),
                  StrFormat("%.3f", run.log_det)});
    std::printf("alpha=%g done: 1-to-1=%.4f\n", alphas[i], run.accuracy_1to1);
  }
  std::printf("\n");
  table.Print();

  acc_hmm_line.assign(xs.size(), hmm_accuracy);
  std::printf("%s\n", AsciiSeriesChart(xs, {acc_dhmm, acc_hmm_line},
                                       {"dHMM", "HMM(alpha=0)"})
                          .c_str());
  std::printf("Paper reference: HMM 0.4475; dHMM best 0.4688 at alpha=100; "
              "sharp drop at alpha=1000.\n");
  std::printf("Expected shape: accuracy rises to an interior alpha optimum "
              ">= the alpha=0 baseline, then degrades when the prior "
              "dominates.\n");
  return 0;
}
