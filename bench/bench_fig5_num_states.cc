// Reproduces Fig. 5: number of hidden states identified (frequency above
// sigma_F) by dHMM- and HMM-learned parameters, as emission sigma sweeps the
// Fig. 3 grid. Paper shape: both identify ~5 states at low sigma; as the
// emissions flatten the HMM count collapses faster than the dHMM count.
#include <cstdio>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Fig. 5", "#identified states vs emission sigma");

  const int num_points = BenchScaled(50, 8);
  const int num_runs = BenchScaled(10, 2);
  const size_t n_seq = static_cast<size_t>(BenchScaled(300, 100));
  const size_t len = 6;
  const double sigma_f =
      50.0 * static_cast<double>(n_seq * len) / 1800.0;  // scaled sigma_F
  const size_t k = data::kToyStates;

  std::vector<double> xs, hmm_states, dhmm_states;
  TextTable table({"idx", "sigma", "#states HMM", "#states dHMM"});
  for (int t = 1; t <= num_points; ++t) {
    double sigma = 0.025 + 0.1 * (t - 1) * (BenchFastMode() ? 6.0 : 1.0);
    double h = 0.0, d = 0.0;
    for (int r = 0; r < num_runs; ++r) {
      bench::ToyRun run =
          bench::RunToy(sigma, n_seq, len, /*alpha=*/1.0,
                        /*seed=*/2000 * static_cast<uint64_t>(t) + r,
                        /*em_iters=*/40);
      h += eval::CountEffectiveStates(
          eval::StateHistogram(run.hmm_paths, k), sigma_f);
      d += eval::CountEffectiveStates(
          eval::StateHistogram(run.dhmm_paths, k), sigma_f);
    }
    h /= num_runs;
    d /= num_runs;
    xs.push_back(sigma);
    hmm_states.push_back(h);
    dhmm_states.push_back(d);
    table.AddRow({StrFormat("%d", t), StrFormat("%.3f", sigma),
                  StrFormat("%.2f", h), StrFormat("%.2f", d)});
  }
  table.Print();
  std::printf("%s\n", AsciiSeriesChart(xs, {hmm_states, dhmm_states},
                                       {"HMM", "dHMM"})
                          .c_str());
  std::printf("Expected shape (paper): curves equal (~5) at the left; dHMM "
              "stays above HMM as sigma grows.\n");
  return 0;
}
