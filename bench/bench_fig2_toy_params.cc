// Reproduces Fig. 2 (a, b): ground-truth vs HMM-learned vs dHMM-learned
// parameters on the simulated 5-state dataset — the transition matrices, the
// initial distribution, and the Gaussian emission means/stds, with learned
// states aligned to the ground truth by the Hungarian algorithm on the
// confusion matrix.
#include <cstdio>

#include "common.h"
#include "eval/hungarian.h"
#include "prob/gaussian_emission.h"
#include "util/string_util.h"

namespace dhmm {
namespace {

// Reorders model states by the 1-to-1 mapping (mapping[state] = true state).
struct Aligned {
  linalg::Matrix a;
  linalg::Vector pi, mu, sigma;
};

Aligned AlignToTruth(const hmm::HmmModel<double>& model,
                     const eval::LabelSequences& paths,
                     const eval::LabelSequences& gold) {
  const size_t k = model.num_states();
  eval::AlignedAccuracy acc = eval::OneToOneAccuracy(paths, gold, k);
  // inverse map: row `true_state` of the output = learned state mapped to it.
  std::vector<size_t> source(k);
  for (size_t s = 0; s < k; ++s) {
    source[static_cast<size_t>(acc.mapping[s])] = s;
  }
  const auto* em =
      dynamic_cast<const prob::GaussianEmission*>(model.emission.get());
  Aligned out;
  out.a = linalg::Matrix(k, k);
  out.pi = linalg::Vector(k);
  out.mu = linalg::Vector(k);
  out.sigma = linalg::Vector(k);
  for (size_t i = 0; i < k; ++i) {
    out.pi[i] = model.pi[source[i]];
    out.mu[i] = em->mu()[source[i]];
    out.sigma[i] = em->sigma()[source[i]];
    for (size_t j = 0; j < k; ++j) {
      out.a(i, j) = model.a(source[i], source[j]);
    }
  }
  return out;
}

void PrintMatrixTriplet(const linalg::Matrix& truth, const linalg::Matrix& h,
                        const linalg::Matrix& d) {
  std::printf("%-42s%-42s%s\n", "original A", "HMM A", "dHMM A");
  for (size_t i = 0; i < truth.rows(); ++i) {
    std::string row;
    for (const linalg::Matrix* m : {&truth, &h, &d}) {
      std::string part = "[";
      for (size_t j = 0; j < m->cols(); ++j) {
        part += StrFormat(" %.3f", (*m)(i, j));
      }
      part += " ]";
      row += PadRight(part, 42);
    }
    std::printf("%s\n", row.c_str());
  }
}

}  // namespace
}  // namespace dhmm

int main() {
  using namespace dhmm;
  bench::PrintHeader("Fig. 2", "toy parameters: ground truth vs HMM vs dHMM");

  const size_t n_seq = static_cast<size_t>(BenchScaled(300, 100));
  bench::ToyRun run = bench::RunToy(/*sigma=*/0.025, n_seq, /*length=*/6,
                                    /*alpha=*/1.0, /*seed=*/42,
                                    /*em_iters=*/60);

  Aligned hmm_params = AlignToTruth(run.hmm, run.hmm_paths, run.gold);
  Aligned dhmm_params = AlignToTruth(run.dhmm, run.dhmm_paths, run.gold);
  data::ToyParams truth = data::ToyGroundTruth(0.025);

  std::printf("--- Fig. 2a: transition matrices (rows aligned to truth) ---\n");
  PrintMatrixTriplet(truth.a, hmm_params.a, dhmm_params.a);

  std::printf("\n--- Fig. 2b: pi, B.mu, B.sigma ---\n");
  TextTable table({"param", "state1", "state2", "state3", "state4", "state5"});
  auto add = [&](const std::string& name, const linalg::Vector& v) {
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < v.size(); ++i) {
      row.push_back(StrFormat("%.4f", v[i]));
    }
    table.AddRow(row);
  };
  add("pi (truth)", truth.pi);
  add("pi (HMM)", hmm_params.pi);
  add("pi (dHMM)", dhmm_params.pi);
  add("B.mu (truth)", truth.mu);
  add("B.mu (HMM)", hmm_params.mu);
  add("B.mu (dHMM)", dhmm_params.mu);
  add("B.sigma (truth)", truth.sigma);
  add("B.sigma (HMM)", hmm_params.sigma);
  add("B.sigma (dHMM)", dhmm_params.sigma);
  table.Print();

  std::printf("Expected shape (paper): dHMM rows mutually distinct and close "
              "to truth;\nHMM collapses several states onto similar "
              "emissions.\n");
  return 0;
}
