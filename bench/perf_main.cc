// Shared main() for every perf_* microbenchmark: BENCHMARK_MAIN() plus a
// `kernel_isa` entry in the benchmark context, so every BENCH_*.json
// records which kernel dispatch variant produced its numbers (an avx512
// run and a DHMM_KERNEL_ISA=scalar run are different experiments and must
// never be compared as one series).
//
// When the run writes a --benchmark_out=FOO.json snapshot, the rendered
// obs snapshot (every process-wide counter/gauge/histogram the run
// touched) lands next to it as FOO.stats.json — the post-run counterpart
// of the pre-run context, since benchmark context is emitted before the
// runs execute. CI uploads both with the same BENCH_*.json artifact glob.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "linalg/kernels_dispatch.h"
#include "obs/metrics.h"
#include "obs/startup.h"

namespace {

// --benchmark_out=PATH or --benchmark_out PATH, scanned before
// benchmark::Initialize consumes the flag.
std::string BenchmarkOutPath(int argc, char** argv) {
  const std::string flag = "--benchmark_out";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(flag + "=", 0) == 0) return arg.substr(flag.size() + 1);
    if (arg == flag && i + 1 < argc) return argv[i + 1];
  }
  return std::string();
}

std::string StatsSidecarPath(const std::string& out_path) {
  const std::string suffix = ".json";
  std::string base = out_path;
  if (base.size() >= suffix.size() &&
      base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
    base.resize(base.size() - suffix.size());
  }
  return base + ".stats.json";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = BenchmarkOutPath(argc, argv);
  dhmm::obs::LogStartup();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("kernel_isa",
                              dhmm::linalg::kernels::ActiveIsaName());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!out_path.empty()) {
    const std::string stats = dhmm::obs::RenderJson(
        dhmm::obs::Registry::Global().TakeSnapshot());
    const std::string sidecar = StatsSidecarPath(out_path);
    if (std::FILE* f = std::fopen(sidecar.c_str(), "w")) {
      std::fprintf(f, "%s\n", stats.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", sidecar.c_str());
    }
  }
  return 0;
}
