// Shared main() for every perf_* microbenchmark: BENCHMARK_MAIN() plus a
// `kernel_isa` entry in the benchmark context, so every BENCH_*.json
// records which kernel dispatch variant produced its numbers (an avx512
// run and a DHMM_KERNEL_ISA=scalar run are different experiments and must
// never be compared as one series).
#include <benchmark/benchmark.h>

#include "linalg/kernels_dispatch.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("kernel_isa",
                              dhmm::linalg::kernels::ActiveIsaName());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
