#!/usr/bin/env python3
"""Self-test for compare_bench_json.py.

Pytest-style (plain `test_*` functions with bare asserts) so `pytest
bench/` picks it up where available, but runnable standalone —
`python3 bench/test_compare_bench_json.py` — which is how the CI
bench-smoke leg invokes it, since the runners carry no pytest.

The contract under test: unit scaling and aggregate-row skipping in
load_benchmarks, and the exit-code policy — removed benches always fail,
regressions fail only under --strict, added benches never fail.
"""

import contextlib
import importlib.util
import io
import json
import sys
import tempfile
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench_json", Path(__file__).parent / "compare_bench_json.py"
)
compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare)


def _write_snapshot(directory, name, benches):
    """Writes one BENCH_<name>.json with [(bench name, ns, unit, run_type)]."""
    doc = {
        "benchmarks": [
            {"name": n, "real_time": t, "time_unit": u, "run_type": r}
            for (n, t, u, r) in benches
        ]
    }
    path = Path(directory) / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc))
    return path


def _run_main(old_dir, new_dir, *extra):
    """Runs compare.main() on two directories; returns (exit code, stdout)."""
    argv = sys.argv
    sys.argv = ["compare_bench_json.py", str(old_dir), str(new_dir), *extra]
    out = io.StringIO()
    try:
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
            code = compare.main()
    finally:
        sys.argv = argv
    return code, out.getvalue()


def test_load_benchmarks_scales_units_and_skips_aggregates():
    with tempfile.TemporaryDirectory() as d:
        _write_snapshot(
            d,
            "units",
            [
                ("BM_ns", 10.0, "ns", "iteration"),
                ("BM_us", 2.0, "us", "iteration"),
                ("BM_ms", 3.0, "ms", "iteration"),
                ("BM_mean", 99.0, "ns", "aggregate"),  # must be skipped
            ],
        )
        loaded = compare.load_benchmarks(d)
    assert loaded == {"BM_ns": 10.0, "BM_us": 2000.0, "BM_ms": 3000000.0}


def test_identical_snapshots_pass():
    rows = [("BM_a", 100.0, "ns", "iteration"), ("BM_b", 5.0, "us", "iteration")]
    with tempfile.TemporaryDirectory() as old, \
            tempfile.TemporaryDirectory() as new:
        _write_snapshot(old, "x", rows)
        _write_snapshot(new, "x", rows)
        code, out = _run_main(old, new, "--strict")
    assert code == 0, out
    assert "no regressions" in out


def test_removed_bench_fails_even_without_strict():
    with tempfile.TemporaryDirectory() as old, \
            tempfile.TemporaryDirectory() as new:
        _write_snapshot(
            old,
            "x",
            [
                ("BM_kept", 100.0, "ns", "iteration"),
                ("BM_dropped", 100.0, "ns", "iteration"),
            ],
        )
        _write_snapshot(new, "x", [("BM_kept", 100.0, "ns", "iteration")])
        code, out = _run_main(old, new)
    assert code == 1, out
    assert "removed (1 benchmark(s) only in old):" in out
    assert "- BM_dropped" in out


def test_added_bench_is_reported_but_passes():
    with tempfile.TemporaryDirectory() as old, \
            tempfile.TemporaryDirectory() as new:
        _write_snapshot(old, "x", [("BM_kept", 100.0, "ns", "iteration")])
        _write_snapshot(
            new,
            "x",
            [
                ("BM_kept", 100.0, "ns", "iteration"),
                ("BM_new", 100.0, "ns", "iteration"),
            ],
        )
        code, out = _run_main(old, new, "--strict")
    assert code == 0, out
    assert "added (1 benchmark(s) only in new):" in out
    assert "+ BM_new" in out


def test_regression_fails_only_under_strict():
    with tempfile.TemporaryDirectory() as old, \
            tempfile.TemporaryDirectory() as new:
        _write_snapshot(old, "x", [("BM_slow", 100.0, "ns", "iteration")])
        _write_snapshot(new, "x", [("BM_slow", 200.0, "ns", "iteration")])
        advisory, out = _run_main(old, new)
        strict, _ = _run_main(old, new, "--strict")
    assert advisory == 0, out
    assert strict == 1
    assert "<-- regression" in out


def test_empty_intersection_fails_only_under_strict():
    with tempfile.TemporaryDirectory() as old, \
            tempfile.TemporaryDirectory() as new:
        _write_snapshot(old, "x", [])
        _write_snapshot(new, "x", [("BM_only_new", 1.0, "ns", "iteration")])
        advisory, out = _run_main(old, new)
        strict, _ = _run_main(old, new, "--strict")
    assert advisory == 0, out
    assert strict == 1
    assert "no comparable benchmarks" in out


def main():
    tests = [
        (name, fn)
        for name, fn in sorted(globals().items())
        if name.startswith("test_") and callable(fn)
    ]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as err:
            failures += 1
            print(f"FAIL {name}: {err}")
    print(f"{len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
