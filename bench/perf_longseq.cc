// Microbenchmark for the long-sequence inference path: full materialized
// forward-backward vs. the checkpointed sweep at T in {1e5, 1e6} frames,
// k = 20 states.
//
// What to look for: the full path materializes the T x k emission table
// and a T x k gamma (160 MB each at T = 1e6) — its wall-time includes
// paging that memory and its peak RSS scales with T * k. The checkpointed
// sweep allocates O(sqrt(T) * k) panels plus the O(T) scale vector,
// trading ~2x the frame arithmetic for a ~k-fold memory reduction; the
// peak_rss_mb counter makes the trade visible next to the timing. Both
// produce bitwise-identical results (tests/engine_test.cc pins that).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "hmm/emission_rows.h"
#include "hmm/engine.h"
#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/sequence.h"
#include "linalg/matrix.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"
#include "util/bench_env.h"
#include "util/check.h"

namespace {

using namespace dhmm;

constexpr size_t kStates = 20;

double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

struct Workload {
  hmm::HmmModel<double> model;
  std::vector<double> obs;
};

Workload MakeWorkload(size_t frames) {
  prob::Rng rng(frames * 2654435761ull + 17);
  Workload w;
  w.model = hmm::HmmModel<double>(
      rng.DirichletSymmetric(kStates, 2.0),
      rng.RandomStochasticMatrix(kStates, kStates, 2.0),
      std::make_unique<prob::GaussianEmission>(
          prob::GaussianEmission::RandomInit(kStates, rng)));
  w.obs.resize(frames);
  for (size_t t = 0; t < frames; ++t) w.obs[t] = rng.Gaussian(3.0, 2.0);
  return w;
}

// In fast (CI smoke) mode shrink the frame counts so the grid stays in
// the sub-second range; the shape of the comparison is unchanged.
size_t ScaledFrames(int64_t arg) {
  return static_cast<size_t>(BenchScaled(static_cast<int>(arg),
                                         static_cast<int>(arg / 50)));
}

void BM_ForwardBackwardFull(benchmark::State& state) {
  const size_t frames = ScaledFrames(state.range(0));
  Workload w = MakeWorkload(frames);
  hmm::InferenceWorkspace ws;
  hmm::ForwardBackwardResult fb;
  for (auto _ : state) {
    w.model.emission->LogProbTableInto(w.obs, &ws.log_b);
    const Status st =
        hmm::TryForwardBackward(w.model.pi, w.model.a, ws.log_b, &ws, &fb);
    DHMM_CHECK(st.ok());
    benchmark::DoNotOptimize(fb.log_likelihood);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(frames));
  state.counters["frames"] = static_cast<double>(frames);
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_ForwardBackwardFull)
    ->ArgNames({"T"})
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ForwardBackwardCheckpointed(benchmark::State& state) {
  const size_t frames = ScaledFrames(state.range(0));
  Workload w = MakeWorkload(frames);
  hmm::InferenceWorkspace ws;
  linalg::Matrix xi(kStates, kStates);
  // The gamma sink consumes each row the way the E-step does — one read
  // per state — so the sweep cannot be optimized out.
  struct SinkCtx {
    double sum = 0.0;
  } sink_ctx;
  hmm::CheckpointedGammaSinks sinks;
  sinks.on_gamma = [](void* ctx, size_t, const double* gamma) {
    static_cast<SinkCtx*>(ctx)->sum += gamma[0];
  };
  sinks.gamma_ctx = &sink_ctx;
  hmm::EmissionLogBRows<double> rows{w.model.emission.get(), &w.obs,
                                     &ws.log_b_row};
  for (auto _ : state) {
    double log_lik = 0.0;
    const Status st = hmm::TryForwardBackwardCheckpointed(
        w.model.pi, w.model.a, rows.View(), /*panel_frames=*/0, &ws, sinks,
        &xi, &log_lik);
    DHMM_CHECK(st.ok());
    benchmark::DoNotOptimize(log_lik);
    benchmark::DoNotOptimize(sink_ctx.sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(frames));
  state.counters["frames"] = static_cast<double>(frames);
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_ForwardBackwardCheckpointed)
    ->ArgNames({"T"})
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end: one full E-step (emission accumulation included) through the
// engine with the checkpointed threshold engaged vs. disabled — the
// training-loop view of the same trade.
void BM_EStepLongSequence(benchmark::State& state) {
  const size_t frames = ScaledFrames(state.range(0));
  const bool checkpointed = state.range(1) != 0;
  Workload w = MakeWorkload(frames);
  hmm::Dataset<double> data(1);
  data[0].obs = w.obs;
  hmm::BatchEmEngine<double> engine(hmm::BatchOptions{
      /*num_threads=*/1,
      /*checkpoint_threshold_frames=*/checkpointed ? size_t{1} : size_t{0}});
  hmm::EStepStats stats;
  for (auto _ : state) {
    std::unique_ptr<prob::EmissionModel<double>> em_acc =
        w.model.emission->Clone();
    stats = engine.EStep(w.model, data, em_acc.get());
    benchmark::DoNotOptimize(stats.log_likelihood);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(frames));
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_EStepLongSequence)
    ->ArgNames({"T", "ckpt"})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({1000000, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
