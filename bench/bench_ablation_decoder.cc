// Ablation: Viterbi (max joint path, the paper's decoder) vs posterior
// max-marginal decoding, for both HMM and dHMM on the toy and OCR tasks.
#include <cstdio>

#include "common.h"
#include "hmm/posterior_decoding.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Ablation C", "Viterbi vs posterior decoding");

  TextTable table({"task", "model", "Viterbi", "posterior"});

  // --- toy ---
  const size_t n_seq = static_cast<size_t>(BenchScaled(300, 100));
  bench::ToyRun toy = bench::RunToy(/*sigma=*/0.8, n_seq, 6, /*alpha=*/1.0,
                                    /*seed=*/41, BenchScaled(50, 15));
  auto toy_acc = [&](const eval::LabelSequences& paths) {
    return eval::OneToOneAccuracy(paths, toy.gold, data::kToyStates).accuracy;
  };
  table.AddRow({"toy", "HMM", StrFormat("%.4f", toy_acc(toy.hmm_paths)),
                StrFormat("%.4f", toy_acc(hmm::PosteriorDecodeDataset(
                                      toy.hmm, toy.data)))});
  table.AddRow({"toy", "dHMM", StrFormat("%.4f", toy_acc(toy.dhmm_paths)),
                StrFormat("%.4f", toy_acc(hmm::PosteriorDecodeDataset(
                                      toy.dhmm, toy.data)))});

  // --- OCR (supervised) ---
  data::OcrOptions oopts = bench::OcrBenchCorpus();
  oopts.num_words = static_cast<size_t>(BenchScaled(1200, 300));
  data::OcrDataset ds = GenerateOcrDataset(oopts);
  hmm::Dataset<prob::BinaryObs> train, test;
  for (size_t i = 0; i < ds.words.size(); ++i) {
    (i % 5 == 0 ? test : train).push_back(ds.words[i]);
  }
  eval::LabelSequences ocr_gold;
  for (const auto& s : test) ocr_gold.push_back(s.labels);

  for (double alpha : {0.0, 10.0}) {
    bench::OcrRun run = bench::RunOcrFold(train, test, alpha, 1e5);
    eval::LabelSequences viterbi, posterior;
    for (const auto& seq : test) {
      linalg::Matrix log_b = run.model.emission->LogProbTable(seq.obs);
      viterbi.push_back(hmm::Viterbi(run.model.pi, run.model.a, log_b).path);
      posterior.push_back(
          hmm::PosteriorDecode(run.model.pi, run.model.a, log_b));
    }
    table.AddRow({"OCR", alpha == 0.0 ? "HMM" : "dHMM",
                  StrFormat("%.4f", eval::FrameAccuracy(viterbi, ocr_gold)),
                  StrFormat("%.4f", eval::FrameAccuracy(posterior, ocr_gold))});
  }

  table.Print();
  std::printf("Expected shape: posterior decoding matches or slightly beats "
              "Viterbi on per-frame accuracy (it optimizes exactly that "
              "metric); the HMM-vs-dHMM ordering is decoder-invariant.\n");
  return 0;
}
