// Microbenchmark for the batched EM engine: E-step throughput (frames/sec)
// as a function of hidden-state count k and engine thread count.
//
// The acceptance bar for the engine is >= 1.5x E-step throughput at 4
// threads vs. 1 on the k=20 workload (on hardware with >= 4 cores; the
// engine is a no-op win on a single-core box). Thread counts only change
// wall-clock time, never results — tests/engine_test.cc pins bitwise
// equality across counts.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>

#include "hmm/engine.h"
#include "hmm/model.h"
#include "hmm/sampler.h"
#include "hmm/sequence.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"

namespace {

using namespace dhmm;

struct Workload {
  hmm::HmmModel<double> model;
  hmm::Dataset<double> data;
};

// Synthetic k-state Gaussian-emission corpus: 64 sequences of length 40,
// sampled from a random chain so every state is exercised.
Workload MakeWorkload(size_t k) {
  prob::Rng rng(k * 7919);
  linalg::Vector mu(k);
  linalg::Vector sigma(k, 0.75);
  for (size_t i = 0; i < k; ++i) mu[i] = static_cast<double>(i);
  hmm::HmmModel<double> model(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::GaussianEmission>(mu, sigma));
  Workload w;
  w.data = hmm::SampleDataset(model, /*num_sequences=*/64, /*length=*/40, rng);
  w.model = std::move(model);
  return w;
}

void BM_BatchEStep(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Workload w = MakeWorkload(k);
  hmm::BatchEmEngine<double> engine(hmm::BatchOptions{threads});
  for (auto _ : state) {
    hmm::EStepStats stats = engine.EStep(w.model, w.data);
    benchmark::DoNotOptimize(stats.log_likelihood);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(hmm::TotalFrames(w.data)));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_BatchEStep)
    ->ArgNames({"k", "threads"})
    ->Args({5, 1})
    ->Args({5, 2})
    ->Args({5, 4})
    ->Args({20, 1})
    ->Args({20, 2})
    ->Args({20, 4})
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->UseRealTime();

// Emission accumulation included: the full E-step as FitEm drives it.
void BM_BatchEStepWithEmission(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Workload w = MakeWorkload(k);
  hmm::BatchEmEngine<double> engine(hmm::BatchOptions{threads});
  for (auto _ : state) {
    hmm::EStepStats stats =
        engine.EStep(w.model, w.data, w.model.emission.get());
    // Discard the accumulated statistics without an M-step so every
    // iteration sees identical parameters.
    w.model.emission->BeginAccumulate();
    benchmark::DoNotOptimize(stats.log_likelihood);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(hmm::TotalFrames(w.data)));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_BatchEStepWithEmission)
    ->ArgNames({"k", "threads"})
    ->Args({20, 1})
    ->Args({20, 4})
    ->UseRealTime();

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
