// Reproduces Table 2: the merged 15-tag inventory of the (synthetic) WSJ-like
// corpus with the paper's frequencies, alongside the frequencies realized by
// our generator — demonstrating that the substitute corpus matches the
// skewed long-tail tag profile the experiments rely on.
#include <cstdio>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Table 2", "PoS tag inventory and frequencies");

  data::PosCorpusOptions opts = bench::PosBenchCorpus();
  data::PosCorpus corpus = GeneratePosCorpus(opts);

  eval::LabelSequences labels;
  size_t total_tokens = 0;
  for (const auto& s : corpus.sentences) {
    labels.push_back(s.labels);
    total_tokens += s.length();
  }
  linalg::Vector hist = eval::StateHistogram(labels, data::kNumPosTags);

  const auto& paper = data::PaperPosTagTable();
  double paper_total = 0.0;
  for (const auto& row : paper) paper_total += row.paper_frequency;

  TextTable table({"idx", "PoS", "merged WSJ tags", "paper freq",
                   "paper share", "generated freq", "generated share"});
  for (size_t i = 0; i < paper.size(); ++i) {
    table.AddRow({StrFormat("%d", paper[i].index), paper[i].name,
                  paper[i].members, StrFormat("%d", paper[i].paper_frequency),
                  StrFormat("%.4f", paper[i].paper_frequency / paper_total),
                  StrFormat("%.0f", hist[i]),
                  StrFormat("%.4f",
                            hist[i] / static_cast<double>(total_tokens))});
  }
  table.Print();

  std::printf("sentences: %zu (paper: 3828)   tokens: %zu (paper: ~93.6K)   "
              "vocab: %zu (paper: ~10K)\n",
              corpus.sentences.size(), total_tokens, corpus.vocab_size);
  std::printf("Expected shape (paper): ~25%% of tags account for ~85%% of "
              "words (skewed long tail).\n");
  return 0;
}
