#include "common.h"

#include <cstdio>
#include <memory>

#include "core/batch_mstep.h"
#include "dpp/logdet.h"
#include "hmm/sampler.h"
#include "prob/categorical_emission.h"

namespace dhmm::bench {

void PrintHeader(const std::string& experiment_id, const std::string& title) {
  std::printf("==== %s — %s ====\n", experiment_id.c_str(), title.c_str());
  std::printf("(paper: \"Diversified Hidden Markov Models for Sequential "
              "Labeling\"; synthetic substitute data, see DESIGN.md §4)\n");
  if (BenchFastMode()) std::printf("[fast mode: reduced workload]\n");
  std::printf("\n");
}

// ------------------------------------------------------------------- Toy ---

ToyRun RunToy(double sigma, size_t num_sequences, size_t length, double alpha,
              uint64_t seed, int em_iters) {
  ToyRun run;
  prob::Rng data_rng(seed);
  run.data = data::GenerateToyDataset(sigma, num_sequences, length, data_rng);
  run.truth = data::ToyGroundTruthModel(sigma);
  for (const auto& seq : run.data) run.gold.push_back(seq.labels);

  prob::Rng init_rng(seed + 1);
  run.hmm = data::ToyRandomInit(init_rng);
  run.dhmm = run.hmm;  // identical starting point

  hmm::EmOptions em;
  em.max_iters = em_iters;
  hmm::FitEm(&run.hmm, run.data, em);

  core::DiversifiedEmOptions opts;
  opts.alpha = alpha;
  opts.max_iters = em_iters;
  core::FitDiversifiedHmm(&run.dhmm, run.data, opts);

  run.hmm_paths = hmm::DecodeDataset(run.hmm, run.data);
  run.dhmm_paths = hmm::DecodeDataset(run.dhmm, run.data);
  run.truth_paths = hmm::DecodeDataset(run.truth, run.data);
  return run;
}

// ------------------------------------------------------------------- PoS ---

data::PosCorpusOptions PosBenchCorpus() {
  data::PosCorpusOptions opts;
  opts.num_sentences = static_cast<size_t>(BenchScaled(1500, 250));
  opts.vocab_size = static_cast<size_t>(BenchScaled(1000, 400));
  opts.ambiguity = 0.10;
  opts.mean_length = 18.0;
  opts.max_length = 60;
  opts.seed = 7;
  return opts;
}

PosRun RunPos(const data::PosCorpus& corpus, double alpha, uint64_t seed,
              int em_iters, int restarts) {
  const size_t k = data::kNumPosTags;
  PosRun best;
  double best_objective = -std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < restarts; ++restart) {
    prob::Rng init_rng(seed + 1000 * static_cast<uint64_t>(restart));
    hmm::HmmModel<int> model(
        init_rng.DirichletSymmetric(k, 1.0),
        init_rng.RandomStochasticMatrix(k, k, 1.0),
        std::make_unique<prob::CategoricalEmission>(
            prob::CategoricalEmission::RandomInit(k, corpus.vocab_size,
                                                  init_rng)));
    double objective;
    if (alpha == 0.0) {
      hmm::EmOptions em;
      em.max_iters = em_iters;
      hmm::EmResult r = hmm::FitEm(&model, corpus.sentences, em);
      objective = r.final_loglik;
    } else {
      core::DiversifiedEmOptions opts;
      opts.alpha = alpha;
      opts.max_iters = em_iters;
      core::DiversifiedFitResult r =
          core::FitDiversifiedHmm(&model, corpus.sentences, opts);
      objective = r.final_map_objective;
    }
    if (objective > best_objective) {
      best_objective = objective;
      best.model = std::move(model);
    }
  }

  eval::LabelSequences gold;
  for (const auto& s : corpus.sentences) gold.push_back(s.labels);
  best.decoded = hmm::DecodeDataset(best.model, corpus.sentences);
  best.accuracy_1to1 = eval::OneToOneAccuracy(best.decoded, gold, k).accuracy;
  best.accuracy_m2o = eval::ManyToOneAccuracy(best.decoded, gold, k).accuracy;
  best.avg_diversity = eval::AveragePairwiseDiversity(best.model.a);
  best.log_det = dpp::LogDetNormalizedKernel(best.model.a, 0.5);
  return best;
}

// ------------------------------------------------------------------- OCR ---

data::OcrOptions OcrBenchCorpus() {
  data::OcrOptions opts;
  opts.num_words = static_cast<size_t>(BenchScaled(3000, 400));
  opts.pixel_flip = 0.10;
  opts.max_jitter = 1;
  opts.seed = 7;
  return opts;
}

OcrRun RunOcrFold(const hmm::Dataset<prob::BinaryObs>& train,
                  const hmm::Dataset<prob::BinaryObs>& test, double alpha,
                  double tether_weight, core::TransitionUpdateWorkspace* ws) {
  OcrRun run;
  std::unique_ptr<prob::EmissionModel<prob::BinaryObs>> emission =
      std::make_unique<prob::BernoulliEmission>(
          linalg::Matrix(data::kNumLetters, data::kGlyphDims, 0.5));
  core::SupervisedDiversifiedOptions opts;
  opts.alpha = alpha;
  opts.tether_weight = tether_weight;
  opts.counting.transition_pseudo_count = 0.1;
  opts.counting.initial_pseudo_count = 0.1;
  run.model = core::FitSupervisedDiversified(train, data::kNumLetters,
                                             std::move(emission), opts,
                                             /*diagnostics=*/nullptr, ws);

  eval::LabelSequences gold, pred;
  for (const auto& seq : test) {
    gold.push_back(seq.labels);
    pred.push_back(hmm::Viterbi(run.model.pi, run.model.a,
                                run.model.emission->LogProbTable(seq.obs))
                       .path);
  }
  run.accuracy = eval::FrameAccuracy(pred, gold);
  return run;
}

std::vector<double> CrossValidatedOcr(const data::OcrDataset& ds,
                                      size_t num_folds, double alpha,
                                      double tether_weight, uint64_t seed,
                                      int num_threads) {
  prob::Rng rng(seed);
  auto folds = eval::KFoldSplit(ds.words.size(), num_folds, rng);
  core::BatchMStepDriver driver(core::BatchMStepOptions{num_threads});
  return eval::EvaluateFolds(
      &driver, folds.size(),
      [&](size_t f, core::TransitionUpdateWorkspace& ws) {
        auto train = eval::Subset(ds.words, folds[f].train);
        auto test = eval::Subset(ds.words, folds[f].test);
        return RunOcrFold(train, test, alpha, tether_weight, &ws).accuracy;
      });
}

}  // namespace dhmm::bench
