// Reproduces Fig. 9: words-per-tag histograms — ground truth vs HMM vs dHMM
// (decoded tag frequencies, tags sorted by true frequency). Paper shape: the
// truth is a skewed long-tail; plain HMM flattens the low-frequency tail;
// the dHMM tracks the tail closer to truth.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Fig. 9", "words-per-tag histogram: truth vs HMM vs dHMM");

  data::PosCorpus corpus = GeneratePosCorpus(bench::PosBenchCorpus());
  const int em_iters = BenchScaled(60, 20);
  const int restarts = BenchScaled(3, 1);

  bench::PosRun hmm_run = bench::RunPos(corpus, 0.0, 5, em_iters, restarts);
  bench::PosRun dhmm_run = bench::RunPos(corpus, 100.0, 5, em_iters, restarts);

  eval::LabelSequences gold;
  for (const auto& s : corpus.sentences) gold.push_back(s.labels);
  const size_t k = data::kNumPosTags;

  // Align decoded states to gold tags (Hungarian), then count frequencies.
  auto aligned_histogram = [&](const bench::PosRun& run) {
    eval::AlignedAccuracy acc = eval::OneToOneAccuracy(run.decoded, gold, k);
    linalg::Vector hist(k);
    for (const auto& path : run.decoded) {
      for (int s : path) {
        hist[static_cast<size_t>(acc.mapping[static_cast<size_t>(s)])] += 1.0;
      }
    }
    return hist;
  };

  linalg::Vector hist_truth = eval::StateHistogram(gold, k);
  linalg::Vector hist_hmm = aligned_histogram(hmm_run);
  linalg::Vector hist_dhmm = aligned_histogram(dhmm_run);

  // Sort tags by descending true frequency, as in the paper's x-axis.
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return hist_truth[a] > hist_truth[b]; });

  TextTable table({"rank", "tag", "ground-truth", "HMM", "dHMM"});
  std::vector<double> xs, t_series, h_series, d_series;
  for (size_t r = 0; r < k; ++r) {
    size_t tag = order[r];
    xs.push_back(static_cast<double>(r + 1));
    t_series.push_back(hist_truth[tag]);
    h_series.push_back(hist_hmm[tag]);
    d_series.push_back(hist_dhmm[tag]);
    table.AddRow({StrFormat("%zu", r + 1), corpus.tag_names[tag],
                  StrFormat("%.0f", hist_truth[tag]),
                  StrFormat("%.0f", hist_hmm[tag]),
                  StrFormat("%.0f", hist_dhmm[tag])});
  }
  table.Print();
  std::printf("%s\n",
              AsciiSeriesChart(xs, {t_series, h_series, d_series},
                               {"truth", "HMM", "dHMM"})
                  .c_str());

  // Tail fit: total absolute deviation from the true histogram over the 10
  // least frequent tags (the paper's "less frequent 10 tags" comparison).
  double dev_hmm = 0.0, dev_dhmm = 0.0;
  for (size_t r = 5; r < k; ++r) {
    size_t tag = order[r];
    dev_hmm += std::fabs(hist_hmm[tag] - hist_truth[tag]);
    dev_dhmm += std::fabs(hist_dhmm[tag] - hist_truth[tag]);
  }
  std::printf("tail (10 rarest tags) L1 deviation from truth: HMM=%.0f  "
              "dHMM=%.0f\n",
              dev_hmm, dev_dhmm);
  std::printf("Expected shape (paper): the dHMM curve follows the skewed "
              "long-tail truth more closely than the HMM curve, especially "
              "over the 10 least frequent tags.\n");
  return 0;
}
