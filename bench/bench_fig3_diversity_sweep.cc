// Reproduces Fig. 3: average pairwise (Bhattacharyya) diversity of the
// learned transition matrix as the Gaussian emission std sigma sweeps
// sigma_t = 0.025 + 0.1*(t-1), t = 1..50, averaged over independent runs.
// Paper shape: ground truth flat at ~0.531; dHMM curve above it; HMM curve
// below it, dropping as emissions flatten.
#include <cstdio>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Fig. 3", "transition-row diversity vs emission sigma");

  const int num_points = BenchScaled(50, 8);
  const int num_runs = BenchScaled(10, 2);
  const size_t n_seq = static_cast<size_t>(BenchScaled(300, 100));
  const double truth_div =
      eval::AveragePairwiseDiversity(data::ToyGroundTruth().a);

  std::vector<double> xs, hmm_div, dhmm_div, orig_div;
  TextTable table({"idx", "sigma", "HMM diversity", "dHMM diversity",
                   "truth diversity"});
  for (int t = 1; t <= num_points; ++t) {
    double sigma = 0.025 + 0.1 * (t - 1) * (BenchFastMode() ? 6.0 : 1.0);
    double h = 0.0, d = 0.0;
    for (int r = 0; r < num_runs; ++r) {
      bench::ToyRun run =
          bench::RunToy(sigma, n_seq, 6, /*alpha=*/1.0,
                        /*seed=*/1000 * static_cast<uint64_t>(t) + r,
                        /*em_iters=*/40);
      h += eval::AveragePairwiseDiversity(run.hmm.a);
      d += eval::AveragePairwiseDiversity(run.dhmm.a);
    }
    h /= num_runs;
    d /= num_runs;
    xs.push_back(sigma);
    hmm_div.push_back(h);
    dhmm_div.push_back(d);
    orig_div.push_back(truth_div);
    table.AddRow({StrFormat("%d", t), StrFormat("%.3f", sigma),
                  StrFormat("%.4f", h), StrFormat("%.4f", d),
                  StrFormat("%.4f", truth_div)});
  }
  table.Print();
  std::printf("%s\n", AsciiSeriesChart(xs, {hmm_div, dhmm_div, orig_div},
                                       {"HMM", "dHMM", "truth"})
                          .c_str());
  std::printf("Expected shape (paper): dHMM curve above HMM curve across the "
              "sweep, truth (~0.531) between them.\n");
  return 0;
}
