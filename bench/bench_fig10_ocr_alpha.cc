// Reproduces Fig. 10: supervised OCR test accuracy as a function of the
// diversity weight alpha (alpha_A fixed at 1e5), averaged over k-fold CV.
// Paper values: HMM (alpha=0) 0.7102; dHMM 0.7203 at alpha=10; larger alpha
// degrades. The shape to check: a gentle rise to an interior optimum.
#include <cstdio>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Fig. 10", "OCR accuracy vs diversity weight alpha");

  data::OcrDataset ds = GenerateOcrDataset(bench::OcrBenchCorpus());
  const size_t folds = static_cast<size_t>(BenchScaled(10, 3));
  const double tether = 1e5;  // the paper's alpha_A

  std::vector<double> alphas = {0.0, 0.1, 1.0, 10.0, 100.0, 1000.0};
  if (BenchFastMode()) alphas = {0.0, 10.0, 1000.0};

  std::vector<double> xs, means;
  TextTable table({"alpha", "mean accuracy", "std", "paper"});
  for (size_t i = 0; i < alphas.size(); ++i) {
    std::vector<double> accs =
        bench::CrossValidatedOcr(ds, folds, alphas[i], tether, /*seed=*/3);
    eval::MeanStd ms = eval::ComputeMeanStd(accs);
    xs.push_back(static_cast<double>(i));
    means.push_back(ms.mean);
    std::string paper = alphas[i] == 0.0   ? "0.7102"
                        : alphas[i] == 10.0 ? "0.7203 (best)"
                                            : "-";
    table.AddRow({StrFormat("%g", alphas[i]), StrFormat("%.4f", ms.mean),
                  StrFormat("%.4f", ms.std), paper});
    std::printf("alpha=%g done: %.4f +- %.4f\n", alphas[i], ms.mean, ms.std);
  }
  std::printf("\n");
  table.Print();
  std::printf("%s\n",
              AsciiSeriesChart(xs, {means}, {"dHMM accuracy"}).c_str());
  std::printf("Expected shape (paper): accuracy at a moderate alpha >= the "
              "alpha=0 counting baseline; very large alpha does not help.\n");
  return 0;
}
