// Ablation (beyond the paper's figures, motivated by its §2.1 related work):
// compares the transition priors the literature proposes on the same
// unsupervised tasks —
//   none      : plain Baum-Welch (ML),
//   smoothing : Dirichlet MAP with beta > 1 (Wang & Schuurmans [50]),
//   sparse    : Dirichlet MAP with beta < 1 (Bicego et al. [8]),
//   diversity : the paper's DPP prior (dHMM).
#include <cstdio>
#include <memory>

#include "common.h"
#include "core/dirichlet_prior.h"
#include "util/string_util.h"

namespace {

using namespace dhmm;

struct PriorResult {
  double toy_accuracy = 0.0;
  double pos_accuracy = 0.0;
  double pos_diversity = 0.0;
};

}  // namespace

int main() {
  bench::PrintHeader("Ablation A", "transition priors: none / smoothing / "
                                   "sparse / diversity");

  // --- toy task ---
  const size_t n_seq = static_cast<size_t>(BenchScaled(300, 100));
  prob::Rng toy_rng(21);
  hmm::Dataset<double> toy_data =
      data::GenerateToyDataset(/*sigma=*/0.8, n_seq, 6, toy_rng);
  eval::LabelSequences toy_gold;
  for (const auto& s : toy_data) toy_gold.push_back(s.labels);

  // --- PoS task (ambiguous variant, where priors matter) ---
  data::PosCorpusOptions copts = bench::PosBenchCorpus();
  copts.ambiguity = 0.30;
  data::PosCorpus corpus = GeneratePosCorpus(copts);
  eval::LabelSequences pos_gold;
  for (const auto& s : corpus.sentences) pos_gold.push_back(s.labels);
  const int em_iters = BenchScaled(50, 15);

  auto run_toy = [&](const hmm::TransitionMStep& m_step,
                     double alpha) -> double {
    prob::Rng init_rng(22);
    hmm::HmmModel<double> model = data::ToyRandomInit(init_rng);
    if (alpha > 0.0) {
      core::DiversifiedEmOptions opts;
      opts.alpha = alpha;
      opts.max_iters = em_iters;
      core::FitDiversifiedHmm(&model, toy_data, opts);
    } else {
      hmm::EmOptions em;
      em.max_iters = em_iters;
      em.transition_m_step = m_step;
      hmm::FitEm(&model, toy_data, em);
    }
    return eval::OneToOneAccuracy(hmm::DecodeDataset(model, toy_data),
                                  toy_gold, data::kToyStates)
        .accuracy;
  };

  auto run_pos = [&](const hmm::TransitionMStep& m_step, double alpha,
                     double* diversity) {
    prob::Rng init_rng(23);
    const size_t k = data::kNumPosTags;
    hmm::HmmModel<int> model(
        init_rng.DirichletSymmetric(k, 1.0),
        init_rng.RandomStochasticMatrix(k, k, 1.0),
        std::make_unique<prob::CategoricalEmission>(
            prob::CategoricalEmission::RandomInit(k, corpus.vocab_size,
                                                  init_rng)));
    if (alpha > 0.0) {
      core::DiversifiedEmOptions opts;
      opts.alpha = alpha;
      opts.max_iters = em_iters;
      core::FitDiversifiedHmm(&model, corpus.sentences, opts);
    } else {
      hmm::EmOptions em;
      em.max_iters = em_iters;
      em.transition_m_step = m_step;
      hmm::FitEm(&model, corpus.sentences, em);
    }
    *diversity = eval::AveragePairwiseDiversity(model.a);
    return eval::OneToOneAccuracy(hmm::DecodeDataset(model, corpus.sentences),
                                  pos_gold, k)
        .accuracy;
  };

  struct Row {
    const char* name;
    hmm::TransitionMStep m_step;
    double alpha;
  };
  std::vector<Row> rows = {
      {"none (ML)", nullptr, 0.0},
      {"smoothing (beta=2)", core::MakeDirichletMStep(2.0), 0.0},
      {"smoothing (beta=10)", core::MakeDirichletMStep(10.0), 0.0},
      {"sparse (beta=0.5)", core::MakeDirichletMStep(0.5), 0.0},
      {"diversity (alpha=1)", nullptr, 1.0},
      {"diversity (alpha=10)", nullptr, 10.0},
  };

  TextTable table({"prior", "toy 1-to-1", "PoS 1-to-1", "PoS diversity"});
  for (const auto& row : rows) {
    double diversity = 0.0;
    double toy_acc = run_toy(row.m_step, row.alpha);
    double pos_acc = run_pos(row.m_step, row.alpha, &diversity);
    table.AddRow({row.name, StrFormat("%.4f", toy_acc),
                  StrFormat("%.4f", pos_acc), StrFormat("%.4f", diversity)});
    std::printf("%s done\n", row.name);
  }
  std::printf("\n");
  table.Print();
  std::printf("Expected shape: the diversity prior is the strongest or "
              "near-strongest on both tasks; smoothing/sparse priors give "
              "smaller, task-dependent gains (the paper's §2.1 narrative).\n");
  return 0;
}
