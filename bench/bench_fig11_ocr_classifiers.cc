// Reproduces Fig. 11: supervised OCR test accuracy of four classifiers under
// 10-fold cross validation.
// Paper values: NaiveBayes 62.7% (1.1), HMM 70.6% (1.3), Optimized HMM
// slightly above HMM, dHMM 72.06% (2.2). Shape to check:
// NaiveBayes < HMM <= OptimizedHMM < dHMM.
#include <cstdio>

#include "baselines/naive_bayes.h"
#include "baselines/optimized_hmm.h"
#include "common.h"
#include "util/string_util.h"

namespace {

using namespace dhmm;

double FoldAccuracy(const eval::LabelSequences& pred,
                    const hmm::Dataset<prob::BinaryObs>& test) {
  eval::LabelSequences gold;
  for (const auto& s : test) gold.push_back(s.labels);
  return eval::FrameAccuracy(pred, gold);
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 11", "OCR classifier comparison (k-fold CV)");

  data::OcrDataset ds = GenerateOcrDataset(bench::OcrBenchCorpus());
  const size_t folds = static_cast<size_t>(BenchScaled(10, 3));
  prob::Rng rng(3);
  auto splits = eval::KFoldSplit(ds.words.size(), folds, rng);

  std::vector<double> nb_acc, hmm_acc, ohmm_acc, dhmm_acc;
  for (const auto& fold : splits) {
    auto train = eval::Subset(ds.words, fold.train);
    auto test = eval::Subset(ds.words, fold.test);

    baselines::NaiveBayesClassifier nb(data::kNumLetters, data::kGlyphDims);
    nb.Fit(train);
    eval::LabelSequences nb_pred;
    for (const auto& s : test) nb_pred.push_back(nb.PredictSequence(s.obs));
    nb_acc.push_back(FoldAccuracy(nb_pred, test));

    hmm_acc.push_back(bench::RunOcrFold(train, test, 0.0, 0.0).accuracy);

    baselines::OptimizedHmm ohmm(data::kNumLetters, data::kGlyphDims);
    ohmm.Fit(train);
    eval::LabelSequences ohmm_pred;
    for (const auto& s : test) ohmm_pred.push_back(ohmm.Decode(s.obs));
    ohmm_acc.push_back(FoldAccuracy(ohmm_pred, test));

    dhmm_acc.push_back(bench::RunOcrFold(train, test, 10.0, 1e5).accuracy);
    std::printf("fold done: NB=%.3f HMM=%.3f OptHMM=%.3f dHMM=%.3f\n",
                nb_acc.back(), hmm_acc.back(), ohmm_acc.back(),
                dhmm_acc.back());
  }
  std::printf("\n");

  TextTable table({"classifier", "mean accuracy (%)", "std (%)", "paper"});
  auto add = [&](const std::string& name, const std::vector<double>& accs,
                 const std::string& paper) {
    eval::MeanStd ms = eval::ComputeMeanStd(accs);
    table.AddRow({name, StrFormat("%.2f", 100.0 * ms.mean),
                  StrFormat("%.2f", 100.0 * ms.std), paper});
  };
  add("Naive Bayes", nb_acc, "62.7 (1.1)");
  add("HMM", hmm_acc, "70.6 (1.3)");
  add("Optimized HMM", ohmm_acc, "~71 (limited gain)");
  add("dHMM", dhmm_acc, "72.06 (2.2)");
  table.Print();

  std::printf("Expected shape (paper): NaiveBayes < HMM <= OptimizedHMM < "
              "dHMM.\n");
  return 0;
}
