// Microbenchmarks for the HMM inference kernels: forward-backward and
// Viterbi scaling in the number of states k and sequence length T, plus the
// kernel-path-versus-scalar-baseline sweep that gates the micro-kernel
// layer (>= 1.5x on ForwardBackward at k = 50, same pattern as perf_mstep).
//
// The baseline below is a line-by-line replica of the pre-kernel inference
// code this PR replaced — column-strided reads of A, the per-frame
// btilde * beta_hat product recomputed k times, divisions inside the inner
// loops, a separate backward pass followed by separate gamma and xi loops,
// and a log-transition table rebuilt on every Viterbi call — inlined here
// so the comparison survives the refactor it measures. Each kernel-path
// benchmark first checks its log-likelihood against the baseline to 1e-12
// relative error and aborts on mismatch.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "hmm/inference.h"
#include "linalg/kernels_dispatch.h"
#include "prob/rng.h"

namespace {

using namespace dhmm;

struct Chain {
  linalg::Vector pi;
  linalg::Matrix a;
  linalg::Matrix log_b;
};

Chain MakeChain(size_t k, size_t t) {
  prob::Rng rng(k * 1000 + t);
  Chain c;
  c.pi = rng.DirichletSymmetric(k, 1.5);
  c.a = rng.RandomStochasticMatrix(k, k, 1.5);
  c.log_b = linalg::Matrix(t, k);
  for (size_t i = 0; i < t; ++i) {
    for (size_t j = 0; j < k; ++j) c.log_b(i, j) = -5.0 * rng.Uniform();
  }
  return c;
}

// ------------------------------------------------------ pre-PR baseline ---

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Reusable buffers mirroring the pre-kernel InferenceWorkspace, so the
// comparison isolates loop structure rather than allocation behaviour.
struct BaselineWs {
  linalg::Matrix alpha_hat, beta_hat, btilde;
  linalg::Vector shift, scale;
  linalg::Matrix delta, log_a;
  linalg::Vector log_pi;
  std::vector<int> psi;
};

struct BaselineFbResult {
  linalg::Matrix gamma, xi_sum;
  double log_likelihood = 0.0;
};

void BaselineForwardBackward(const linalg::Vector& pi, const linalg::Matrix& a,
                             const linalg::Matrix& log_b, BaselineWs* ws,
                             BaselineFbResult* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  out->gamma.Resize(big_t, k);
  out->xi_sum.Resize(k, k);
  out->xi_sum.Fill(0.0);

  ws->btilde.Resize(big_t, k);
  ws->shift.Resize(big_t);
  for (size_t t = 0; t < big_t; ++t) {
    const double* row = log_b.row_data(t);
    double m = kNegInf;
    for (size_t i = 0; i < k; ++i) m = std::max(m, row[i]);
    double* bt = ws->btilde.row_data(t);
    for (size_t i = 0; i < k; ++i) bt[i] = std::exp(row[i] - m);
    ws->shift[t] = m;
  }

  ws->alpha_hat.Resize(big_t, k);
  ws->beta_hat.Resize(big_t, k);
  ws->scale.Resize(big_t);
  linalg::Matrix& alpha_hat = ws->alpha_hat;
  linalg::Matrix& beta_hat = ws->beta_hat;
  const linalg::Matrix& btilde = ws->btilde;

  double loglik = 0.0;
  double c = 0.0;
  for (size_t i = 0; i < k; ++i) {
    alpha_hat(0, i) = pi[i] * btilde(0, i);
    c += alpha_hat(0, i);
  }
  for (size_t i = 0; i < k; ++i) alpha_hat(0, i) /= c;
  ws->scale[0] = c;
  loglik += std::log(c) + ws->shift[0];

  for (size_t t = 1; t < big_t; ++t) {
    c = 0.0;
    for (size_t j = 0; j < k; ++j) {
      double s = 0.0;
      // Column-strided read of A, exactly as the pre-kernel code did.
      for (size_t i = 0; i < k; ++i) s += alpha_hat(t - 1, i) * a(i, j);
      alpha_hat(t, j) = s * btilde(t, j);
      c += alpha_hat(t, j);
    }
    for (size_t j = 0; j < k; ++j) alpha_hat(t, j) /= c;
    ws->scale[t] = c;
    loglik += std::log(c) + ws->shift[t];
  }
  out->log_likelihood = loglik;

  for (size_t i = 0; i < k; ++i) beta_hat(big_t - 1, i) = 1.0;
  for (size_t t = big_t - 1; t-- > 0;) {
    for (size_t i = 0; i < k; ++i) {
      double s = 0.0;
      // The frame product recomputed k times, division in the inner loop.
      for (size_t j = 0; j < k; ++j) {
        s += a(i, j) * btilde(t + 1, j) * beta_hat(t + 1, j);
      }
      beta_hat(t, i) = s / ws->scale[t + 1];
    }
  }

  for (size_t t = 0; t < big_t; ++t) {
    double norm = 0.0;
    for (size_t i = 0; i < k; ++i) {
      out->gamma(t, i) = alpha_hat(t, i) * beta_hat(t, i);
      norm += out->gamma(t, i);
    }
    for (size_t i = 0; i < k; ++i) out->gamma(t, i) /= norm;
  }
  for (size_t t = 1; t < big_t; ++t) {
    for (size_t i = 0; i < k; ++i) {
      double ai = alpha_hat(t - 1, i);
      if (ai == 0.0) continue;
      for (size_t j = 0; j < k; ++j) {
        out->xi_sum(i, j) +=
            ai * a(i, j) * btilde(t, j) * beta_hat(t, j) / ws->scale[t];
      }
    }
  }
}

void BaselineViterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, BaselineWs* ws,
                     hmm::ViterbiResult* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  ws->log_pi.Resize(k);
  ws->log_a.Resize(k, k);
  // Log tables rebuilt per call, as the pre-kernel code did.
  for (size_t i = 0; i < k; ++i) {
    ws->log_pi[i] = pi[i] > 0.0 ? std::log(pi[i]) : kNegInf;
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      ws->log_a(i, j) = a(i, j) > 0.0 ? std::log(a(i, j)) : kNegInf;
    }
  }
  ws->delta.Resize(big_t, k);
  ws->psi.resize(big_t * k);
  linalg::Matrix& delta = ws->delta;

  for (size_t i = 0; i < k; ++i) delta(0, i) = ws->log_pi[i] + log_b(0, i);
  for (size_t t = 1; t < big_t; ++t) {
    int* psi_row = ws->psi.data() + t * k;
    for (size_t j = 0; j < k; ++j) {
      double best = kNegInf;
      int arg = 0;
      // Column-strided read of log_a.
      for (size_t i = 0; i < k; ++i) {
        double v = delta(t - 1, i) + ws->log_a(i, j);
        if (v > best) {
          best = v;
          arg = static_cast<int>(i);
        }
      }
      delta(t, j) = best + log_b(t, j);
      psi_row[j] = arg;
    }
  }

  out->path.resize(big_t);
  double best = kNegInf;
  int arg = 0;
  for (size_t i = 0; i < k; ++i) {
    if (delta(big_t - 1, i) > best) {
      best = delta(big_t - 1, i);
      arg = static_cast<int>(i);
    }
  }
  out->log_joint = best;
  out->path[big_t - 1] = arg;
  for (size_t t = big_t - 1; t-- > 0;) {
    out->path[t] = ws->psi[(t + 1) * k + out->path[t + 1]];
  }
}

// Kernel path and baseline must tell the same story before being timed.
void CheckParity(const Chain& c) {
  BaselineWs bws;
  BaselineFbResult bfb;
  BaselineForwardBackward(c.pi, c.a, c.log_b, &bws, &bfb);
  hmm::ForwardBackwardResult fb = hmm::ForwardBackward(c.pi, c.a, c.log_b);
  const double rel = std::fabs(fb.log_likelihood - bfb.log_likelihood) /
                     std::max(1.0, std::fabs(bfb.log_likelihood));
  if (rel > 1e-12) {
    std::fprintf(stderr,
                 "kernel/baseline log-likelihood mismatch: %.17g vs %.17g "
                 "(rel %.3g)\n",
                 fb.log_likelihood, bfb.log_likelihood, rel);
    std::abort();
  }
  hmm::ViterbiResult vb, vk;
  BaselineViterbi(c.pi, c.a, c.log_b, &bws, &vb);
  vk = hmm::Viterbi(c.pi, c.a, c.log_b);
  if (vk.path != vb.path ||
      std::fabs(vk.log_joint - vb.log_joint) >
          1e-12 * std::max(1.0, std::fabs(vb.log_joint))) {
    std::fprintf(stderr, "kernel/baseline Viterbi mismatch\n");
    std::abort();
  }
}

// ------------------------------------------------- baseline-vs-kernel sweep ---

void BM_ForwardBackwardBaseline(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  BaselineWs ws;
  BaselineFbResult fb;
  for (auto _ : state) {
    BaselineForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
    benchmark::DoNotOptimize(fb.log_likelihood);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t));
}

void BM_ForwardBackwardKernels(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  CheckParity(c);
  hmm::InferenceWorkspace ws;
  hmm::ForwardBackwardResult fb;
  for (auto _ : state) {
    hmm::ForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
    benchmark::DoNotOptimize(fb.log_likelihood);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t));
}

void BM_ViterbiBaseline(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  BaselineWs ws;
  hmm::ViterbiResult res;
  for (auto _ : state) {
    BaselineViterbi(c.pi, c.a, c.log_b, &ws, &res);
    benchmark::DoNotOptimize(res.log_joint);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t));
}

void BM_ViterbiKernels(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  CheckParity(c);
  hmm::InferenceWorkspace ws;
  hmm::ViterbiResult res;
  for (auto _ : state) {
    hmm::Viterbi(c.pi, c.a, c.log_b, &ws, &res);
    benchmark::DoNotOptimize(res.log_joint);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t));
}

#define INFERENCE_SWEEP(bench)                                          \
  BENCHMARK(bench)                                                      \
      ->ArgNames({"k", "T"})                                            \
      ->Args({5, 100})                                                  \
      ->Args({20, 100})                                                 \
      ->Args({50, 100})

INFERENCE_SWEEP(BM_ForwardBackwardBaseline);
INFERENCE_SWEEP(BM_ForwardBackwardKernels);
INFERENCE_SWEEP(BM_ViterbiBaseline);
INFERENCE_SWEEP(BM_ViterbiKernels);

#undef INFERENCE_SWEEP

// ------------------------------------------------------- absolute scaling ---

void BM_ForwardBackward(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  for (auto _ : state) {
    auto r = hmm::ForwardBackward(c.pi, c.a, c.log_b);
    benchmark::DoNotOptimize(r.log_likelihood);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t));
}
BENCHMARK(BM_ForwardBackward)
    ->Args({5, 6})      // toy experiment shape
    ->Args({15, 24})    // PoS experiment shape
    ->Args({26, 8})     // OCR experiment shape
    ->Args({15, 250})   // longest paper sentence
    ->Args({50, 100});  // stress

void BM_Viterbi(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  for (auto _ : state) {
    auto r = hmm::Viterbi(c.pi, c.a, c.log_b);
    benchmark::DoNotOptimize(r.log_joint);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t));
}
BENCHMARK(BM_Viterbi)
    ->Args({5, 6})
    ->Args({15, 24})
    ->Args({26, 8})
    ->Args({15, 250})
    ->Args({50, 100});

void BM_LogLikelihoodOnly(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm::LogLikelihood(c.pi, c.a, c.log_b));
  }
}
BENCHMARK(BM_LogLikelihoodOnly)->Args({15, 24})->Args({26, 8});

// ----------------------------------------------- per-ISA dispatch benches ---
//
// One ForwardBackward series per compiled-and-runnable kernel ISA, at the
// two shapes the dispatch layer is gated on: k = 8 (largest fixed-k
// instantiation) and k = 50 (variable-length vector path). The speedup
// bars — avx* >= 1.5x scalar at k = 8 and >= 2.5x at k = 50 — are read off
// these series. The benchmark forces the process-wide tables to the
// requested ISA for its duration (documented test/bench-only hook) and
// restores the startup resolution afterwards; Google Benchmark runs
// benchmarks sequentially, so nothing else observes the swap.

namespace klib = dhmm::linalg::kernels;

void BM_ForwardBackwardIsa(benchmark::State& state, klib::Isa isa, size_t k,
                           size_t t) {
  Chain c = MakeChain(k, t);
  const klib::Isa restore = klib::ActiveIsa();
  if (!klib::internal::ForceIsaForTestOnly(isa)) {
    state.SkipWithError("kernel ISA not runnable on this host");
    return;
  }
  hmm::InferenceWorkspace ws;
  hmm::ForwardBackwardResult fb;
  for (auto _ : state) {
    hmm::ForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
    benchmark::DoNotOptimize(fb.log_likelihood);
  }
  klib::internal::ForceIsaForTestOnly(restore);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t));
}

int RegisterPerIsaBenches() {
  for (klib::Isa isa : klib::CompiledIsas()) {
    if (!klib::IsaAvailable(isa)) continue;
    for (size_t k : {size_t{8}, size_t{50}}) {
      const std::string name = std::string("BM_ForwardBackwardIsa/") +
                               klib::IsaName(isa) + "/k:" +
                               std::to_string(k) + "/T:100";
      benchmark::RegisterBenchmark(
          name.c_str(),
          [isa, k](benchmark::State& state) {
            BM_ForwardBackwardIsa(state, isa, k, 100);
          });
    }
  }
  return 0;
}

// -------------------------------------------- startup dispatch parity grid ---
//
// Before anything is timed, every compiled ISA's tables (generic and
// fixed-k) are compared against the scalar oracle on randomized data over
// the shapes the engine uses — abort on any divergence beyond 1e-12, so a
// broken variant can never produce a plausible-looking benchmark number.

void CheckDispatchParityOrDie() {
  prob::Rng rng(20160516);
  std::vector<double> x, y, w, a, s0, s1, v0, v1;
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                   size_t{6}, size_t{7}, size_t{8}, size_t{20}, size_t{50}}) {
    x.resize(n);
    y.resize(n);
    w.resize(n);
    a.resize(n * n);
    s0.assign(n, 0.0);
    s1.assign(n, 0.0);
    v0.resize(n);
    v1.resize(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = 2.0 * rng.Uniform() - 1.0;
      y[i] = 2.0 * rng.Uniform() - 1.0;
      w[i] = rng.Uniform();
    }
    for (size_t i = 0; i < n * n; ++i) a[i] = rng.Uniform();
    const klib::KernelTable& sc = klib::TableFor(klib::Isa::kScalar, n);
    for (klib::Isa isa : klib::CompiledIsas()) {
      if (isa == klib::Isa::kScalar || !klib::IsaAvailable(isa)) continue;
      const klib::KernelTable& kt = klib::TableFor(isa, n);
      double worst = 0.0;
      auto note = [&](double d) { worst = std::max(worst, std::fabs(d)); };
      note(kt.sum_row(x.data(), n) - sc.sum_row(x.data(), n));
      note(kt.dot(x.data(), y.data(), n) - sc.dot(x.data(), y.data(), n));
      note(kt.max_row(x.data(), n) - sc.max_row(x.data(), n));
      kt.mat_vec_col_mul(a.data(), x.data(), w.data(), n, n, v0.data());
      sc.mat_vec_col_mul(a.data(), x.data(), w.data(), n, n, v1.data());
      for (size_t i = 0; i < n; ++i) note(v0[i] - v1[i]);
      kt.exp_shift_row(x.data(), n, v0.data());
      sc.exp_shift_row(x.data(), n, v1.data());
      for (size_t i = 0; i < n; ++i) note(v0[i] - v1[i]);
      kt.axpy_mul_row(0.75, x.data(), y.data(), n, s0.data());
      sc.axpy_mul_row(0.75, x.data(), y.data(), n, s1.data());
      for (size_t i = 0; i < n; ++i) note(s0[i] - s1[i]);
      std::vector<double> xi0(n * n, 0.25), xi1(n * n, 0.25);
      kt.axpy_mul_mat(w.data(), a.data(), y.data(), n, n, xi0.data());
      sc.axpy_mul_mat(w.data(), a.data(), y.data(), n, n, xi1.data());
      for (size_t i = 0; i < n * n; ++i) note(xi0[i] - xi1[i]);
      kt.backward_fused(a.data(), y.data(), w.data(), n, n, v0.data(),
                        xi0.data());
      sc.backward_fused(a.data(), y.data(), w.data(), n, n, v1.data(),
                        xi1.data());
      for (size_t i = 0; i < n; ++i) note(v0[i] - v1[i]);
      for (size_t i = 0; i < n * n; ++i) note(xi0[i] - xi1[i]);
      if (worst > 1e-12) {
        std::fprintf(stderr,
                     "kernel dispatch parity failure: %s vs scalar at n=%zu "
                     "(max abs diff %.3g)\n",
                     kt.name, n, worst);
        std::abort();
      }
    }
  }
}

const int kDispatchChecksDone = [] {
  CheckDispatchParityOrDie();
  return RegisterPerIsaBenches();
}();

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
