// Microbenchmarks for the HMM inference kernels: forward-backward and
// Viterbi scaling in the number of states k and sequence length T.
#include <benchmark/benchmark.h>

#include "hmm/inference.h"
#include "prob/rng.h"

namespace {

using namespace dhmm;

struct Chain {
  linalg::Vector pi;
  linalg::Matrix a;
  linalg::Matrix log_b;
};

Chain MakeChain(size_t k, size_t t) {
  prob::Rng rng(k * 1000 + t);
  Chain c;
  c.pi = rng.DirichletSymmetric(k, 1.5);
  c.a = rng.RandomStochasticMatrix(k, k, 1.5);
  c.log_b = linalg::Matrix(t, k);
  for (size_t i = 0; i < t; ++i) {
    for (size_t j = 0; j < k; ++j) c.log_b(i, j) = -5.0 * rng.Uniform();
  }
  return c;
}

void BM_ForwardBackward(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  for (auto _ : state) {
    auto r = hmm::ForwardBackward(c.pi, c.a, c.log_b);
    benchmark::DoNotOptimize(r.log_likelihood);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t));
}
BENCHMARK(BM_ForwardBackward)
    ->Args({5, 6})      // toy experiment shape
    ->Args({15, 24})    // PoS experiment shape
    ->Args({26, 8})     // OCR experiment shape
    ->Args({15, 250})   // longest paper sentence
    ->Args({50, 100});  // stress

void BM_Viterbi(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  for (auto _ : state) {
    auto r = hmm::Viterbi(c.pi, c.a, c.log_b);
    benchmark::DoNotOptimize(r.log_joint);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t));
}
BENCHMARK(BM_Viterbi)
    ->Args({5, 6})
    ->Args({15, 24})
    ->Args({26, 8})
    ->Args({15, 250})
    ->Args({50, 100});

void BM_LogLikelihoodOnly(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t t = static_cast<size_t>(state.range(1));
  Chain c = MakeChain(k, t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm::LogLikelihood(c.pi, c.a, c.log_b));
  }
}
BENCHMARK(BM_LogLikelihoodOnly)->Args({15, 24})->Args({26, 8});

}  // namespace

BENCHMARK_MAIN();
