// Reproduces Fig. 8: Bhattacharyya diversity between tag 1 (NOUN)'s learned
// transition row and every other tag's row, for HMM vs dHMM (at the best
// alpha). Paper shape: dHMM assigns the largest NOUN-distance to the
// rare-tag rows (Interjection, Foreign word), which plain HMM misses.
#include <cstdio>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Fig. 8",
                     "transition diversity between tag 1 (NOUN) and others");

  data::PosCorpus corpus = GeneratePosCorpus(bench::PosBenchCorpus());
  const int em_iters = BenchScaled(60, 20);
  const int restarts = BenchScaled(3, 1);

  bench::PosRun hmm_run = bench::RunPos(corpus, 0.0, 5, em_iters, restarts);
  bench::PosRun dhmm_run =
      bench::RunPos(corpus, 100.0, 5, em_iters, restarts);

  // Align learned states to gold tags so "tag 1" means NOUN in both models.
  eval::LabelSequences gold;
  for (const auto& s : corpus.sentences) gold.push_back(s.labels);
  auto aligned_row_profile = [&](const bench::PosRun& run) {
    eval::AlignedAccuracy acc = eval::OneToOneAccuracy(
        run.decoded, gold, data::kNumPosTags);
    std::vector<size_t> source(data::kNumPosTags);
    for (size_t s = 0; s < data::kNumPosTags; ++s) {
      source[static_cast<size_t>(acc.mapping[s])] = s;
    }
    linalg::Matrix a(data::kNumPosTags, data::kNumPosTags);
    for (size_t i = 0; i < data::kNumPosTags; ++i) {
      for (size_t j = 0; j < data::kNumPosTags; ++j) {
        a(i, j) = run.model.a(source[i], source[j]);
      }
    }
    return eval::RowDiversityProfile(a, 0);
  };

  linalg::Vector profile_hmm = aligned_row_profile(hmm_run);
  linalg::Vector profile_dhmm = aligned_row_profile(dhmm_run);
  linalg::Vector profile_truth =
      eval::RowDiversityProfile(corpus.ground_truth.a, 0);

  TextTable table({"tag idx", "tag", "HMM", "dHMM", "generator truth"});
  for (size_t j = 1; j < data::kNumPosTags; ++j) {
    table.AddRow({StrFormat("%zu", j + 1), corpus.tag_names[j],
                  StrFormat("%.4f", profile_hmm[j]),
                  StrFormat("%.4f", profile_dhmm[j]),
                  StrFormat("%.4f", profile_truth[j])});
  }
  table.Print();

  std::printf("Expected shape (paper): the dHMM profile dominates the HMM "
              "profile, especially for rare tags (FW idx 9, INTJ idx 11) "
              "whose transition rows should differ most from NOUN's.\n");
  return 0;
}
