// Ablation (the paper's future-work direction): selecting the number of
// hidden states by penalized likelihood, with and without the diversity
// prior active during fitting. The generating model has 5 states; a good
// selector recovers k = 5.
#include <cstdio>
#include <memory>

#include "common.h"
#include "core/state_selection.h"
#include "prob/gaussian_emission.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Ablation D", "state-count selection (BIC sweep)");

  const size_t n_seq = static_cast<size_t>(BenchScaled(300, 120));
  prob::Rng data_rng(51);
  hmm::Dataset<double> data =
      data::GenerateToyDataset(/*sigma=*/0.35, n_seq, 8, data_rng);

  core::ModelFactory<double> factory = [](size_t k, prob::Rng& rng) {
    return hmm::HmmModel<double>(
        rng.DirichletSymmetric(k, 3.0), rng.RandomStochasticMatrix(k, k, 3.0),
        std::make_unique<prob::GaussianEmission>(
            prob::GaussianEmission::RandomInit(k, rng)));
  };

  for (double alpha : {0.0, 1.0}) {
    core::StateSelectionOptions opts;
    opts.min_states = 2;
    opts.max_states = static_cast<size_t>(BenchScaled(8, 6));
    opts.alpha = alpha;
    opts.em_iters = BenchScaled(40, 15);
    opts.restarts = BenchScaled(2, 1);
    core::StateSelectionResult result = core::SelectStateCount(
        data, factory, /*emission_params_per_state=*/2.0, opts);

    std::printf("--- alpha = %g ---\n", alpha);
    TextTable table({"k", "loglik", "#params", "BIC"});
    for (const auto& cand : result.candidates) {
      table.AddRow({StrFormat("%zu", cand.k),
                    StrFormat("%.1f", cand.log_likelihood),
                    StrFormat("%.0f", cand.num_parameters),
                    StrFormat("%.1f", cand.score)});
    }
    table.Print();
    std::printf("selected k = %zu (true k = 5)\n\n", result.best_k);
  }
  std::printf("Expected shape: BIC selects k at or near the generating 5; "
              "the diversity prior does not distort the selection.\n");
  return 0;
}
