// Microbenchmarks for the DPP machinery: kernel construction, log-det
// objective, its gradient (the dHMM M-step inner-loop cost the paper calls
// "the most time-consuming step ... matrix inversion"), simplex projection,
// and sampling.
#include <benchmark/benchmark.h>

#include "dpp/logdet.h"
#include "dpp/product_kernel.h"
#include "dpp/sampling.h"
#include "optim/simplex_projection.h"
#include "prob/rng.h"

namespace {

using namespace dhmm;

linalg::Matrix RandomRows(size_t k) {
  prob::Rng rng(k);
  return rng.RandomStochasticMatrix(k, k, 1.5);
}

void BM_NormalizedKernel(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  linalg::Matrix a = RandomRows(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpp::NormalizedKernel(a));
  }
}
BENCHMARK(BM_NormalizedKernel)->Arg(5)->Arg(15)->Arg(26)->Arg(50);

void BM_LogDet(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  linalg::Matrix a = RandomRows(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpp::LogDetNormalizedKernel(a));
  }
}
BENCHMARK(BM_LogDet)->Arg(5)->Arg(15)->Arg(26)->Arg(50);

void BM_GradLogDet(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  linalg::Matrix a = RandomRows(k);
  linalg::Matrix grad;
  for (auto _ : state) {
    dpp::GradLogDetNormalizedKernel(a, 0.5, &grad);
    benchmark::DoNotOptimize(grad);
  }
}
BENCHMARK(BM_GradLogDet)->Arg(5)->Arg(15)->Arg(26)->Arg(50);

void BM_SimplexProjection(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  prob::Rng rng(n);
  linalg::Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optim::ProjectToSimplex(v));
  }
}
BENCHMARK(BM_SimplexProjection)->Arg(5)->Arg(26)->Arg(100)->Arg(1000);

void BM_SampleKDpp(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  prob::Rng rng(n);
  linalg::Matrix g(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) g(i, j) = rng.Gaussian();
  linalg::Matrix l = g.MatMul(g.Transposed());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpp::SampleKDpp(l, n / 2, rng));
  }
}
BENCHMARK(BM_SampleKDpp)->Arg(10)->Arg(26)->Arg(50);

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
