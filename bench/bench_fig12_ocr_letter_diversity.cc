// Reproduces Fig. 12 (a, b): Bhattacharyya diversity between the learned
// transition row of letter 'x' (and 'y') and every other letter's row, for
// HMM vs dHMM trained with alpha = 10, alpha_A = 1e5.
// Paper shape: the two profiles track each other nearly everywhere, with the
// dHMM selectively raising a few pairwise diversities.
#include <cstdio>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Fig. 12",
                     "per-letter transition diversity: 'x' and 'y' vs rest");

  data::OcrDataset ds = GenerateOcrDataset(bench::OcrBenchCorpus());
  // Single split (the paper plots one trained model).
  hmm::Dataset<prob::BinaryObs> train;
  for (size_t i = 0; i < ds.words.size(); ++i) train.push_back(ds.words[i]);

  bench::OcrRun hmm_run = bench::RunOcrFold(train, train, 0.0, 0.0);
  bench::OcrRun dhmm_run = bench::RunOcrFold(train, train, 10.0, 1e5);

  for (char target : {'x', 'y'}) {
    size_t row = static_cast<size_t>(data::LetterIndex(target));
    linalg::Vector prof_hmm =
        eval::RowDiversityProfile(hmm_run.model.a, row);
    linalg::Vector prof_dhmm =
        eval::RowDiversityProfile(dhmm_run.model.a, row);

    std::printf("--- Fig. 12%c: letter '%c' ---\n", target == 'x' ? 'a' : 'b',
                target);
    TextTable table({"letter", "HMM", "dHMM", "dHMM - HMM"});
    for (size_t j = 0; j < data::kNumLetters; ++j) {
      if (j == row) continue;
      table.AddRow({StrFormat("%c", data::LetterChar(static_cast<int>(j))),
                    StrFormat("%.4f", prof_hmm[j]),
                    StrFormat("%.4f", prof_dhmm[j]),
                    StrFormat("%+.4f", prof_dhmm[j] - prof_hmm[j])});
    }
    table.Print();
  }

  std::printf("Expected shape (paper): profiles nearly coincide for most "
              "letters (the strong tether keeps A near A0), with the dHMM "
              "raising selected pairwise diversities.\n");
  return 0;
}
