// Reproduces Table 3: example rendered words from the OCR dataset — two
// independently noisy renderings of each example word (standing in for the
// two handwriting samples the paper shows), plus the clean templates.
// Example words are the paper's own: embraces, commanding, volcanic.
#include <cstdio>

#include "common.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Table 3", "example OCR words (16x8 binary glyphs)");

  data::OcrOptions opts = bench::OcrBenchCorpus();
  prob::Rng rng(99);
  for (const char* word : {"embraces", "commanding", "volcanic"}) {
    std::printf("--- %s ---\n", word);
    std::printf("sample 1 (noisy):\n%s\n",
                data::RenderWordAscii(data::RenderWord(word, opts, rng).obs)
                    .c_str());
    std::printf("sample 2 (noisy):\n%s\n",
                data::RenderWordAscii(data::RenderWord(word, opts, rng).obs)
                    .c_str());
    std::vector<prob::BinaryObs> clean;
    for (const char* c = word; *c; ++c) {
      clean.push_back(data::GlyphTemplate(
          static_cast<size_t>(data::LetterIndex(*c))));
    }
    std::printf("clean templates:\n%s\n", data::RenderWordAscii(clean).c_str());
  }
  std::printf("Expected shape (paper): same word, visibly different noisy "
              "renderings — per-sample variability that the emission model "
              "must absorb.\n");
  return 0;
}
