// Microbenchmark for the serve layer: decode requests/sec through
// DecodeService vs. the naive per-request loop (allocate a fresh emission
// table and workspace per request, decode single-threaded) that every
// caller used before the service existed.
//
// The acceptance bar is >= 2x throughput over the naive loop at k = 20
// with >= 4 workers (on hardware with >= 4 cores): the service wins on
// both axes — worker parallelism across a coalesced batch, and pooled
// allocation-free workspaces per worker. A StreamingDecoder sweep tracks
// per-frame fixed-lag labeling cost.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/sampler.h"
#include "hmm/sequence.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"
#include "serve/decode_service.h"
#include "serve/streaming_decoder.h"

namespace {

using namespace dhmm;

struct Workload {
  std::shared_ptr<const hmm::HmmModel<double>> model;
  hmm::Dataset<double> data;
};

// Synthetic k-state Gaussian-emission request log: 96 sequences of length
// 32, sampled from a random chain so every state is exercised.
Workload MakeWorkload(size_t k) {
  prob::Rng rng(k * 6151);
  linalg::Vector mu(k);
  linalg::Vector sigma(k, 0.75);
  for (size_t i = 0; i < k; ++i) mu[i] = static_cast<double>(i);
  auto model = std::make_shared<const hmm::HmmModel<double>>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::GaussianEmission>(mu, sigma));
  Workload w;
  w.data = hmm::SampleDataset(*model, /*num_sequences=*/96, /*length=*/32,
                              rng);
  w.model = std::move(model);
  return w;
}

// The pre-serve baseline: one offline convenience call per request, fresh
// allocations every time, no batching, no parallelism.
void BM_NaivePerRequestLoop(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Workload w = MakeWorkload(k);
  for (auto _ : state) {
    double sink = 0.0;
    for (const auto& seq : w.data) {
      linalg::Matrix log_b = w.model->emission->LogProbTable(seq.obs);
      sink += hmm::Viterbi(w.model->pi, w.model->a, log_b).log_joint;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.data.size()));
}
BENCHMARK(BM_NaivePerRequestLoop)
    ->ArgNames({"k"})
    ->Args({5})
    ->Args({20})
    ->Args({50})
    ->UseRealTime();

void BM_DecodeService(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Workload w = MakeWorkload(k);
  serve::ServeOptions opts;
  opts.num_threads = threads;
  opts.max_batch = 32;
  serve::DecodeService<double> service(w.model, opts);
  std::vector<serve::DecodeFuture<double>> futures;
  futures.reserve(w.data.size());
  for (auto _ : state) {
    for (const auto& seq : w.data) {
      futures.push_back(service.Submit(serve::DecodeKind::kViterbi, seq.obs));
    }
    double sink = 0.0;
    for (auto& f : futures) sink += f.Wait().value;
    futures.clear();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.data.size()));
  state.counters["threads"] = threads;
  // Coalescing observability: near max_batch means the dispatcher actually
  // amortizes fan-out over full batches under burst load.
  state.counters["largest_batch"] =
      static_cast<double>(service.largest_batch());
}
BENCHMARK(BM_DecodeService)
    ->ArgNames({"k", "threads"})
    ->Args({5, 1})
    ->Args({5, 4})
    ->Args({20, 1})
    ->Args({20, 4})
    ->Args({50, 1})
    ->Args({50, 4})
    ->UseRealTime();

void BM_StreamingDecoderPush(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t lag = static_cast<size_t>(state.range(1));
  Workload w = MakeWorkload(k);
  serve::StreamingOptions opts;
  opts.lag = lag;
  serve::StreamingDecoder<double> dec(w.model, opts);
  size_t frames = 0;
  for (auto _ : state) {
    dec.Reset();
    int sink = 0;
    for (const auto& seq : w.data) {
      for (double y : seq.obs) {
        if (dec.Push(y)) sink += dec.last_label();
      }
      frames += seq.obs.size();
      dec.Reset();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(frames));
  state.counters["lag"] = static_cast<double>(lag);
}
BENCHMARK(BM_StreamingDecoderPush)
    ->ArgNames({"k", "lag"})
    ->Args({20, 0})
    ->Args({20, 4})
    ->Args({20, 16})
    ->UseRealTime();

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
