// Ablation (design choice called out in DESIGN.md): the probability product
// kernel exponent rho. The paper fixes rho = 0.5 (Bhattacharyya) "for all
// experiments" without ablating it; this bench sweeps rho on the toy task
// and reports accuracy and resulting diversity, plus the gradient-formula
// fidelity check (paper Eq. 15 vs exact normalized-kernel gradient).
#include <cmath>
#include <cstdio>

#include "common.h"
#include "dpp/logdet.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Ablation B", "kernel exponent rho and gradient fidelity");

  const size_t n_seq = static_cast<size_t>(BenchScaled(300, 100));
  prob::Rng data_rng(31);
  hmm::Dataset<double> data =
      data::GenerateToyDataset(/*sigma=*/0.8, n_seq, 6, data_rng);
  eval::LabelSequences gold;
  for (const auto& s : data) gold.push_back(s.labels);
  const int em_iters = BenchScaled(50, 15);

  TextTable table({"rho", "toy 1-to-1", "avg B-dist", "log det K~(A)"});
  for (double rho : {0.25, 0.5, 0.75, 1.0}) {
    prob::Rng init_rng(32);
    hmm::HmmModel<double> model = data::ToyRandomInit(init_rng);
    core::DiversifiedEmOptions opts;
    opts.alpha = 1.0;
    opts.rho = rho;
    opts.max_iters = em_iters;
    core::FitDiversifiedHmm(&model, data, opts);
    double acc = eval::OneToOneAccuracy(hmm::DecodeDataset(model, data), gold,
                                        data::kToyStates)
                     .accuracy;
    table.AddRow({StrFormat("%.2f", rho), StrFormat("%.4f", acc),
                  StrFormat("%.4f", eval::AveragePairwiseDiversity(model.a)),
                  StrFormat("%.4f",
                            dpp::LogDetNormalizedKernel(model.a, rho))});
  }
  table.Print();

  // Gradient fidelity: on the simplex, exact gradient == 2 * Eq.15 - 1
  // entrywise (both yield the same projected ascent direction).
  prob::Rng rng(33);
  linalg::Matrix a = rng.RandomStochasticMatrix(5, 5, 2.0);
  linalg::Matrix exact, paper;
  dpp::GradLogDetNormalizedKernel(a, 0.5, &exact);
  dpp::PaperGradLogDet(a, &paper);
  double max_dev = 0.0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      max_dev = std::max(max_dev,
                         std::fabs(exact(i, j) - (2.0 * paper(i, j) - 1.0)));
    }
  }
  std::printf("gradient fidelity: max |exact - (2*Eq.15 - 1)| = %.2e "
              "(identical projected direction)\n\n", max_dev);
  std::printf("Expected shape: rho = 0.5 (the paper's choice) is competitive "
              "across the sweep; the prior's effect is not hypersensitive to "
              "rho.\n");
  return 0;
}
