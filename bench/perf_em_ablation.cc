// Ablation microbenchmarks for the training loop: the cost of one EM
// iteration with and without the diversity prior, the penalized transition
// update itself as alpha varies, and the paper-vs-exact gradient formulas.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/dhmm_trainer.h"
#include "core/transition_update.h"
#include "dpp/logdet.h"
#include "hmm/sampler.h"
#include "hmm/trainer.h"
#include "prob/categorical_emission.h"

namespace {

using namespace dhmm;

hmm::HmmModel<int> MakeModel(size_t k, size_t v, uint64_t seed) {
  prob::Rng rng(seed);
  return hmm::HmmModel<int>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(k, v, rng)));
}

void BM_EmIterationPlain(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  hmm::HmmModel<int> truth = MakeModel(k, 30, 1);
  prob::Rng rng(2);
  hmm::Dataset<int> data = hmm::SampleDataset(truth, 50, 12, rng);
  for (auto _ : state) {
    state.PauseTiming();
    hmm::HmmModel<int> model = MakeModel(k, 30, 3);
    state.ResumeTiming();
    hmm::EmOptions em;
    em.max_iters = 1;
    hmm::FitEm(&model, data, em);
  }
}
BENCHMARK(BM_EmIterationPlain)->Arg(5)->Arg(15)->Arg(26);

void BM_EmIterationDiversified(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  hmm::HmmModel<int> truth = MakeModel(k, 30, 1);
  prob::Rng rng(2);
  hmm::Dataset<int> data = hmm::SampleDataset(truth, 50, 12, rng);
  for (auto _ : state) {
    state.PauseTiming();
    hmm::HmmModel<int> model = MakeModel(k, 30, 3);
    state.ResumeTiming();
    core::DiversifiedEmOptions opts;
    opts.alpha = 10.0;
    opts.max_iters = 1;
    core::FitDiversifiedHmm(&model, data, opts);
  }
}
BENCHMARK(BM_EmIterationDiversified)->Arg(5)->Arg(15)->Arg(26);

void BM_TransitionUpdate(benchmark::State& state) {
  size_t k = 15;
  double alpha = static_cast<double>(state.range(0));
  prob::Rng rng(4);
  linalg::Matrix counts(k, k);
  for (size_t i = 0; i < k; ++i)
    for (size_t j = 0; j < k; ++j) counts(i, j) = 1.0 + 100.0 * rng.Uniform();
  linalg::Matrix init = rng.RandomStochasticMatrix(k, k, 1.5);
  for (auto _ : state) {
    core::TransitionUpdateOptions opts;
    opts.alpha = alpha;
    benchmark::DoNotOptimize(core::UpdateTransitions(init, counts, opts));
  }
}
BENCHMARK(BM_TransitionUpdate)->Arg(0)->Arg(1)->Arg(10)->Arg(100);

void BM_GradientFormula_Exact(benchmark::State& state) {
  prob::Rng rng(5);
  linalg::Matrix a = rng.RandomStochasticMatrix(15, 15, 1.5);
  linalg::Matrix grad;
  for (auto _ : state) {
    dpp::GradLogDetNormalizedKernel(a, 0.5, &grad);
    benchmark::DoNotOptimize(grad);
  }
}
BENCHMARK(BM_GradientFormula_Exact);

void BM_GradientFormula_PaperEq15(benchmark::State& state) {
  prob::Rng rng(5);
  linalg::Matrix a = rng.RandomStochasticMatrix(15, 15, 1.5);
  linalg::Matrix grad;
  for (auto _ : state) {
    dpp::PaperGradLogDet(a, &grad);
    benchmark::DoNotOptimize(grad);
  }
}
BENCHMARK(BM_GradientFormula_PaperEq15);

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
