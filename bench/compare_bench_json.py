#!/usr/bin/env python3
"""Compare two sets of Google Benchmark JSON snapshots.

Usage:
    compare_bench_json.py OLD NEW [--threshold X] [--strict]

OLD and NEW are either single --benchmark_out JSON files or directories
searched recursively for BENCH_*.json (the names the CI bench-smoke step
emits). Benchmarks are matched by full name (including args, e.g.
"BM_SessionPush/sessions:100000/real_time"); for each match the script
prints old/new wall time and the ratio, and flags entries whose slowdown
exceeds --threshold (default 1.25x).

Benchmarks present in only one snapshot get an explicit added/removed
section. Removed benches (in OLD but not NEW) always exit 1: a bench
that silently disappears is lost coverage, not a timing trend, so it
must not pass unnoticed even in advisory mode. Added benches are
informational.

Beyond that, exit status is 0 unless --strict is given, in which case
flagged regressions (or an empty intersection) also exit 1. CI runs
without --strict: smoke-budget timings are trend indicators, not gates,
and the comparison step is continue-on-error anyway so a missing
artifact never blocks a merge.
"""

import argparse
import json
import sys
from pathlib import Path


def load_benchmarks(root):
    """Returns {benchmark name: real_time in ns} across all snapshots."""
    root = Path(root)
    if root.is_dir():
        files = sorted(root.rglob("BENCH_*.json"))
    else:
        files = [root]
    results = {}
    for path in files:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)
            continue
        for bench in doc.get("benchmarks", []):
            # Aggregate rows (mean/median/stddev) would double-count.
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("name")
            time = bench.get("real_time")
            if name is None or time is None:
                continue
            unit = bench.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
            if scale is None:
                print(f"warning: {name}: unknown unit {unit}", file=sys.stderr)
                continue
            results[name] = time * scale
    return results


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline JSON file or directory")
    parser.add_argument("new", help="candidate JSON file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="flag benchmarks slower than this ratio (default 1.25)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on flagged regressions or no comparable benchmarks",
    )
    args = parser.parse_args()

    old = load_benchmarks(args.old)
    new = load_benchmarks(args.new)
    common = sorted(set(old) & set(new))
    removed = sorted(set(old) - set(new))
    added = sorted(set(new) - set(old))

    flagged = []
    if common:
        width = max(len(name) for name in common)
        print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  ratio")
        for name in common:
            ratio = new[name] / old[name] if old[name] > 0 else float("inf")
            marker = ""
            if ratio > args.threshold:
                marker = "  <-- regression"
                flagged.append((name, ratio))
            print(
                f"{name:<{width}}  {format_ns(old[name]):>10}  "
                f"{format_ns(new[name]):>10}  {ratio:5.2f}x{marker}"
            )
    else:
        print("no comparable benchmarks between the two snapshots")

    # Coverage drift, listed explicitly so it can never hide in a diff of
    # timing rows. Removed benches are a hard failure whatever the mode.
    if added:
        print(f"\nadded ({len(added)} benchmark(s) only in new):")
        for name in added:
            print(f"  + {name}")
    if removed:
        print(f"\nremoved ({len(removed)} benchmark(s) only in old):")
        for name in removed:
            print(f"  - {name}")

    if flagged:
        print(
            f"\n{len(flagged)} benchmark(s) slower than "
            f"{args.threshold:.2f}x the baseline"
        )
    elif common:
        print(f"\nno regressions beyond {args.threshold:.2f}x")

    if removed:
        print(
            f"error: {len(removed)} benchmark(s) disappeared from the new "
            "snapshot — a dropped bench is lost coverage, not a trend",
            file=sys.stderr,
        )
        return 1
    if args.strict and (flagged or not common):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
