// Microbenchmark for the wire front-end: loopback request throughput and
// latency through FrontEnd -> ModelRegistry -> DecodeService, against the
// in-process DecodeService ceiling from perf_serve.
//
// Axes: k in {5, 20, 50} states x resident model count in {1, 4} — the
// multi-model cost is registry routing plus per-model batch dilution, and
// both should be small next to the decode itself. The pipelined variant
// keeps a deep window of requests in flight (throughput); the ping-pong
// variant sends one request at a time and reports a latency histogram
// (p50/p90/p99) from per-request wall times.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "hmm/model.h"
#include "hmm/sampler.h"
#include "hmm/sequence.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"
#include "serve/frontend.h"
#include "serve/model_registry.h"
#include "serve/wire_client.h"
#include "util/check.h"
#include "util/status.h"

namespace {

using namespace dhmm;

std::shared_ptr<const hmm::HmmModel<double>> MakeModel(size_t k,
                                                       uint64_t seed) {
  prob::Rng rng(seed);
  linalg::Vector mu(k);
  linalg::Vector sigma(k, 0.75);
  for (size_t i = 0; i < k; ++i) mu[i] = static_cast<double>(i);
  return std::make_shared<const hmm::HmmModel<double>>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::GaussianEmission>(mu, sigma));
}

// A registry of `models` k-state models plus one request sequence per
// model, served by a running front-end on an ephemeral loopback port.
struct Loopback {
  serve::ModelRegistry<double> registry;
  std::unique_ptr<serve::FrontEnd<double>> frontend;
  std::vector<std::vector<double>> obs;  // one sequence per model

  Loopback(size_t k, size_t models) {
    prob::Rng rng(k * 131 + models);
    for (size_t m = 0; m < models; ++m) {
      auto model = MakeModel(k, k * 1000 + m);
      obs.push_back(hmm::SampleSequence(*model, /*length=*/32, rng).obs);
      Status st = registry.Register(static_cast<serve::ModelId>(m + 1),
                                    std::move(model));
      DHMM_CHECK(st.ok());
    }
    frontend = std::make_unique<serve::FrontEnd<double>>(&registry);
    DHMM_CHECK(frontend->Start().ok());
  }
};

serve::DecodeRequest<double> MakeRequest(const Loopback& lb, uint64_t i) {
  const size_t m = static_cast<size_t>(i) % lb.obs.size();
  serve::DecodeRequest<double> req;
  req.request_id = i;
  req.model = static_cast<serve::ModelId>(m + 1);
  req.kind = serve::DecodeKind::kViterbi;
  req.obs = &lb.obs[m];
  return req;
}

// Throughput: a deep pipeline of wire requests round-robined over every
// registered model through one connection.
void BM_FrontEndPipelined(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t models = static_cast<size_t>(state.range(1));
  constexpr size_t kWindow = 32;
  Loopback lb(k, models);
  serve::WireClient client;
  DHMM_CHECK(client.Connect(lb.frontend->port()).ok());

  uint64_t next_id = 0;
  serve::DecodeResponse resp;
  for (auto _ : state) {
    for (size_t i = 0; i < kWindow; ++i) {
      benchmark::DoNotOptimize(client.Send(MakeRequest(lb, next_id++)).ok());
    }
    double sink = 0.0;
    for (size_t i = 0; i < kWindow; ++i) {
      DHMM_CHECK(client.Receive(&resp).ok());
      sink += resp.value;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWindow));
  state.counters["models"] = static_cast<double>(models);
  state.counters["served"] =
      static_cast<double>(lb.frontend->requests_served());
}
BENCHMARK(BM_FrontEndPipelined)
    ->ArgNames({"k", "models"})
    ->Args({5, 1})
    ->Args({5, 4})
    ->Args({20, 1})
    ->Args({20, 4})
    ->Args({50, 1})
    ->Args({50, 4})
    ->UseRealTime();

// Latency: one request in flight at a time; per-request wall times feed a
// histogram reported as p50/p90/p99 counters (microseconds).
void BM_FrontEndPingPong(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t models = static_cast<size_t>(state.range(1));
  Loopback lb(k, models);
  serve::WireClient client;
  DHMM_CHECK(client.Connect(lb.frontend->port()).ok());

  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 16);
  uint64_t next_id = 0;
  serve::DecodeResponse resp;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    DHMM_CHECK(client.Call(MakeRequest(lb, next_id++), &resp).ok());
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(resp.value);
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[idx];
  };
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["models"] = static_cast<double>(models);
  state.counters["p50_us"] = pct(0.50);
  state.counters["p90_us"] = pct(0.90);
  state.counters["p99_us"] = pct(0.99);
}
BENCHMARK(BM_FrontEndPingPong)
    ->ArgNames({"k", "models"})
    ->Args({5, 1})
    ->Args({20, 1})
    ->Args({20, 4})
    ->Args({50, 1})
    ->UseRealTime();

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
