// Microbenchmark for the penalized transition M-step (Algorithm 1): the
// allocation-free workspace path versus a faithful reconstruction of the
// pre-workspace baseline, swept over k and alpha.
//
// The acceptance bar for the workspace stack is >= 2x on UpdateTransitions
// at k = 20 versus the baseline path below — a line-by-line replica of the
// code this PR replaced: std::pow-based kernel builds, a fresh normalized
// kernel + pivoted LU per objective probe, a gradient that rebuilds the
// kernel and forms an explicit inverse through per-column temporaries, and
// per-row allocating simplex projections.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "core/transition_update.h"
#include "dpp/logdet.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "optim/projected_gradient.h"
#include "optim/simplex_projection.h"
#include "prob/rng.h"

namespace {

using namespace dhmm;

struct MStepInputs {
  linalg::Matrix counts;
  linalg::Matrix init;
};

// A batch of independent inputs per measurement: the ascent is adaptive, so
// a single input would make the comparison hostage to one trajectory's
// probe-count luck. Eight seeds average that out.
constexpr size_t kBatch = 8;

MStepInputs MakeInputs(size_t k, uint64_t seed) {
  prob::Rng rng(k * 7919 + seed);
  MStepInputs in;
  in.counts = linalg::Matrix(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      in.counts(i, j) = 1.0 + 100.0 * rng.Uniform();
    }
  }
  in.init = rng.RandomStochasticMatrix(k, k, 1.5);
  return in;
}

std::vector<MStepInputs> MakeBatch(size_t k) {
  std::vector<MStepInputs> batch;
  batch.reserve(kBatch);
  for (uint64_t s = 0; s < kBatch; ++s) batch.push_back(MakeInputs(k, s));
  return batch;
}

// ------------------------------------------------------ pre-PR baseline ---
//
// Verbatim reconstruction of the pre-workspace M-step, inlined here so the
// comparison survives the refactor it measures: std::pow-based kernel
// builds (no sqrt specialization), a normalized kernel + fresh LU per
// objective probe, and a gradient that rebuilds the kernel again, forms an
// explicit inverse, and multiplies it out — all through freshly allocated
// matrices, exactly as the shipped code did before the workspace stack.

constexpr double kProbFloor = 1e-12;

// Pre-PR feasibility projection: per-row allocating simplex projection
// (Row copy -> ProjectToSimplex -> SetRow) followed by the whole-row
// renormalization after flooring.
void BaselineProjectFeasible(linalg::Matrix* a, double row_floor) {
  for (size_t r = 0; r < a->rows(); ++r) {
    a->SetRow(r, optim::ProjectToSimplex(a->Row(r)));
  }
  if (row_floor <= 0.0) return;
  for (size_t r = 0; r < a->rows(); ++r) {
    double* row = a->row_data(r);
    bool clipped = false;
    for (size_t c = 0; c < a->cols(); ++c) {
      if (row[c] < row_floor) {
        row[c] = row_floor;
        clipped = true;
      }
    }
    if (clipped) {
      double s = 0.0;
      for (size_t c = 0; c < a->cols(); ++c) s += row[c];
      for (size_t c = 0; c < a->cols(); ++c) row[c] /= s;
    }
  }
}

linalg::Matrix BaselinePowed(const linalg::Matrix& rows, double rho) {
  const size_t kk = rows.rows();
  const size_t d = rows.cols();
  linalg::Matrix powed(kk, d);
  for (size_t i = 0; i < kk; ++i) {
    for (size_t x = 0; x < d; ++x) {
      double v = rows(i, x);
      powed(i, x) = std::pow(v < kProbFloor ? kProbFloor : v, rho);
    }
  }
  return powed;
}

linalg::Matrix BaselineKernel(const linalg::Matrix& powed) {
  const size_t kk = powed.rows();
  const size_t d = powed.cols();
  linalg::Matrix kernel(kk, kk);
  for (size_t i = 0; i < kk; ++i) {
    for (size_t j = i; j < kk; ++j) {
      double s = 0.0;
      for (size_t x = 0; x < d; ++x) s += powed(i, x) * powed(j, x);
      kernel(i, j) = s;
      kernel(j, i) = s;
    }
  }
  return kernel;
}

double BaselineLogDet(const linalg::Matrix& rows, double rho) {
  linalg::Matrix kernel = BaselineKernel(BaselinePowed(rows, rho));
  dpp::NormalizeKernel(&kernel);
  linalg::LuDecomposition lu(kernel);
  if (lu.IsSingular() || lu.DeterminantSign() <= 0) {
    return -std::numeric_limits<double>::infinity();
  }
  return lu.LogAbsDeterminant();
}

bool BaselineGradLogDet(const linalg::Matrix& rows, double rho,
                        linalg::Matrix* grad) {
  const size_t kk = rows.rows();
  const size_t d = rows.cols();
  *grad = linalg::Matrix(kk, d);
  linalg::Matrix powed = BaselinePowed(rows, rho);
  linalg::Matrix kernel = BaselineKernel(powed);
  linalg::LuDecomposition lu(kernel);
  if (lu.IsSingular() || lu.DeterminantSign() <= 0) return false;
  // Pre-PR inverse: column-by-column vector solves through Col/SetCol
  // temporaries (what LuDecomposition::Inverse did before InverseInto).
  linalg::Matrix ident = linalg::Matrix::Identity(kk);
  linalg::Matrix kinv(kk, kk);
  for (size_t c = 0; c < kk; ++c) {
    kinv.SetCol(c, lu.Solve(ident.Col(c)));
  }
  linalg::Matrix m = kinv.MatMul(powed);
  for (size_t i = 0; i < kk; ++i) {
    const double kii = kernel(i, i);
    for (size_t j = 0; j < d; ++j) {
      double a = rows(i, j);
      if (a < kProbFloor) {
        (*grad)(i, j) = 0.0;
        continue;
      }
      double p = powed(i, j);
      (*grad)(i, j) =
          2.0 * rho * std::pow(a, rho - 1.0) * (m(i, j) - p / kii);
    }
  }
  return true;
}

double BaselineObjective(const linalg::Matrix& a, const linalg::Matrix& counts,
                         const core::TransitionUpdateOptions& options) {
  double obj = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      double c = counts(i, j);
      if (c == 0.0) continue;
      if (a(i, j) <= 0.0) return -std::numeric_limits<double>::infinity();
      obj += c * std::log(a(i, j));
    }
  }
  if (options.alpha != 0.0) {
    double ld = BaselineLogDet(a, options.rho);
    if (std::isinf(ld)) return ld;
    obj += options.alpha * ld;
  }
  return obj;
}

core::TransitionUpdateResult BaselineUpdateTransitions(
    const linalg::Matrix& a_init, const linalg::Matrix& counts,
    const core::TransitionUpdateOptions& options) {
  const size_t k = a_init.rows();
  linalg::Matrix ml = counts;
  ml.NormalizeRows();
  BaselineProjectFeasible(&ml, options.row_floor);
  linalg::Matrix start = a_init;
  BaselineProjectFeasible(&start, options.row_floor);
  {
    double obj_ml = BaselineObjective(ml, counts, options);
    double obj_start = BaselineObjective(start, counts, options);
    if (obj_ml > obj_start || std::isinf(obj_start)) start = ml;
  }

  auto objective = [&](const linalg::Matrix& a) {
    return BaselineObjective(a, counts, options);
  };
  auto gradient = [&](const linalg::Matrix& a, linalg::Matrix* grad) {
    linalg::Matrix g(k, k);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        if (counts(i, j) > 0.0) g(i, j) = counts(i, j) / a(i, j);
      }
    }
    if (options.alpha != 0.0) {
      linalg::Matrix dpp_grad;
      if (!BaselineGradLogDet(a, options.rho, &dpp_grad)) {
        return false;
      }
      g += dpp_grad * options.alpha;
    }
    *grad = linalg::Matrix(k, k);
    for (size_t i = 0; i < k; ++i) {
      double row_mean = 0.0;
      for (size_t j = 0; j < k; ++j) row_mean += a(i, j) * g(i, j);
      for (size_t j = 0; j < k; ++j) {
        (*grad)(i, j) = a(i, j) * (g(i, j) - row_mean);
      }
    }
    return true;
  };
  auto project = [&](linalg::Matrix* a) {
    BaselineProjectFeasible(a, options.row_floor);
  };

  optim::ProjectedGradientResult pg = optim::ProjectedGradientAscent(
      start, objective, gradient, project, options.ascent);
  core::TransitionUpdateResult result;
  result.a = std::move(pg.argmax);
  result.objective = pg.objective;
  result.iterations = pg.iterations;
  result.converged = pg.converged;
  return result;
}

void BM_UpdateTransitionsBaseline(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<MStepInputs> batch = MakeBatch(k);
  core::TransitionUpdateOptions opts;
  opts.alpha = static_cast<double>(state.range(1));
  for (auto _ : state) {
    for (const MStepInputs& in : batch) {
      core::TransitionUpdateResult r =
          BaselineUpdateTransitions(in.init, in.counts, opts);
      benchmark::DoNotOptimize(r.objective);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.counters["alpha"] = opts.alpha;
}

void BM_UpdateTransitionsWorkspace(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<MStepInputs> batch = MakeBatch(k);
  core::TransitionUpdateOptions opts;
  opts.alpha = static_cast<double>(state.range(1));
  core::TransitionUpdateWorkspace ws;
  core::TransitionUpdateResult result;
  for (auto _ : state) {
    for (const MStepInputs& in : batch) {
      core::UpdateTransitions(in.init, in.counts, opts, &ws, &result);
      benchmark::DoNotOptimize(result.objective);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.counters["alpha"] = opts.alpha;
}

// Warm-start inputs: the per-EM-iteration shape. Training calls the M-step
// once per outer iteration starting from the *previous* A, so after the
// first few iterations every update starts near its optimum and runs only
// a couple of ascent steps — the regime where the redundant staging
// evaluations and per-probe rebuild costs dominate.
std::vector<MStepInputs> MakeWarmBatch(size_t k, double alpha) {
  std::vector<MStepInputs> batch = MakeBatch(k);
  core::TransitionUpdateOptions opts;
  opts.alpha = alpha;
  for (MStepInputs& in : batch) {
    in.init = core::UpdateTransitions(in.init, in.counts, opts).a;
  }
  return batch;
}

void BM_UpdateTransitionsBaselineWarm(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  core::TransitionUpdateOptions opts;
  opts.alpha = static_cast<double>(state.range(1));
  std::vector<MStepInputs> batch = MakeWarmBatch(k, opts.alpha);
  for (auto _ : state) {
    for (const MStepInputs& in : batch) {
      core::TransitionUpdateResult r =
          BaselineUpdateTransitions(in.init, in.counts, opts);
      benchmark::DoNotOptimize(r.objective);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.counters["alpha"] = opts.alpha;
}

void BM_UpdateTransitionsWorkspaceWarm(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  core::TransitionUpdateOptions opts;
  opts.alpha = static_cast<double>(state.range(1));
  std::vector<MStepInputs> batch = MakeWarmBatch(k, opts.alpha);
  core::TransitionUpdateWorkspace ws;
  core::TransitionUpdateResult result;
  for (auto _ : state) {
    for (const MStepInputs& in : batch) {
      core::UpdateTransitions(in.init, in.counts, opts, &ws, &result);
      benchmark::DoNotOptimize(result.objective);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.counters["alpha"] = opts.alpha;
}

#define MSTEP_SWEEP(bench)                                              \
  BENCHMARK(bench)                                                      \
      ->ArgNames({"k", "alpha"})                                        \
      ->Args({5, 1})                                                    \
      ->Args({5, 10})                                                   \
      ->Args({20, 1})                                                   \
      ->Args({20, 10})                                                  \
      ->Args({50, 1})                                                   \
      ->Args({50, 10})

MSTEP_SWEEP(BM_UpdateTransitionsBaseline);
MSTEP_SWEEP(BM_UpdateTransitionsWorkspace);
MSTEP_SWEEP(BM_UpdateTransitionsBaselineWarm);
MSTEP_SWEEP(BM_UpdateTransitionsWorkspaceWarm);

#undef MSTEP_SWEEP

// The fused objective+gradient oracle versus the separate entry points it
// replaced (one kernel build + factorization versus two of each).
void BM_LogDetGradSeparate(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  prob::Rng rng(5);
  linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 1.5);
  linalg::Matrix grad;
  for (auto _ : state) {
    double ld = dpp::LogDetNormalizedKernel(a, 0.5);
    dpp::GradLogDetNormalizedKernel(a, 0.5, &grad);
    benchmark::DoNotOptimize(ld);
    benchmark::DoNotOptimize(grad);
  }
}
BENCHMARK(BM_LogDetGradSeparate)->ArgName("k")->Arg(20);

void BM_LogDetGradFused(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  prob::Rng rng(5);
  linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 1.5);
  dpp::KernelWorkspace ws;
  double ld = 0.0;
  linalg::Matrix grad;
  for (auto _ : state) {
    dpp::LogDetAndGrad(a, 0.5, &ws, &ld, &grad);
    benchmark::DoNotOptimize(ld);
    benchmark::DoNotOptimize(grad);
  }
}
BENCHMARK(BM_LogDetGradFused)->ArgName("k")->Arg(20);

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
