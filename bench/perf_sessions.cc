// Microbenchmark for the session pool: steady-state Push throughput as
// the number of resident sessions grows 1e3 -> 1e4 -> 1e5.
//
// The acceptance bar is flatness, not raw speed: per-push cost is O(lag *
// k^2) math plus an O(1) handle resolution, so throughput at 1e5 resident
// sessions must stay within 1.2x of the 1e3 figure (the slab layout keeps
// slot records dense and ring blocks arena-packed; a pointer-chasing
// per-session-heap design fails this bar on cache misses alone). The
// strided walk defeats the best case where one hot session stays in L1.
// A second benchmark tracks the create/destroy churn path, which must
// stay allocation-free off the slot and arena free lists.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hmm/model.h"
#include "hmm/sampler.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"
#include "serve/session_manager.h"

namespace {

using namespace dhmm;

std::shared_ptr<const hmm::HmmModel<double>> MakeModel(size_t k) {
  prob::Rng rng(k * 7577);
  linalg::Vector mu(k);
  linalg::Vector sigma(k, 0.75);
  for (size_t i = 0; i < k; ++i) mu[i] = static_cast<double>(i);
  return std::make_shared<const hmm::HmmModel<double>>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::GaussianEmission>(mu, sigma));
}

constexpr size_t kStates = 16;
constexpr size_t kLag = 8;
constexpr size_t kObsPool = 4096;  // power of two: cheap masked indexing

std::vector<double> MakeObsPool() {
  prob::Rng rng(40923);
  std::vector<double> pool(kObsPool);
  for (double& y : pool) y = rng.Uniform(0.0, static_cast<double>(kStates));
  return pool;
}

void BM_SessionPush(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto model = MakeModel(kStates);
  serve::SessionManagerOptions opts;
  opts.lag = kLag;
  serve::SessionManager<double> mgr(model, opts);
  const std::vector<double> pool = MakeObsPool();

  std::vector<serve::SessionHandle> handles(n);
  for (size_t s = 0; s < n; ++s) handles[s] = mgr.CreateSession().value();
  // Warm every session past its lag window so measured pushes all emit
  // labels through the full smoothing sweep.
  int label = 0;
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t <= kLag; ++t) {
      mgr.Push(handles[s], pool[(s + t) & (kObsPool - 1)], &label);
    }
  }

  // Strided walk over the pool: consecutive visits land on well-separated
  // sessions (no hot session parked in L1), while each visit pushes one
  // wire-request-sized burst of frames — the session front-end hands
  // SessionManager whole observation arrays, not single frames.
  constexpr size_t kStride = 7919;  // prime, so every session is visited
  constexpr size_t kVisits = 64;
  constexpr size_t kBurst = 16;
  size_t cursor = 0;
  uint64_t pushes = 0;
  for (auto _ : state) {
    int sink = 0;
    for (size_t v = 0; v < kVisits; ++v) {
      cursor = (cursor + kStride) % n;
      for (size_t i = 0; i < kBurst; ++i) {
        mgr.Push(handles[cursor], pool[(pushes + i) & (kObsPool - 1)],
                 &label);
        sink += label;
      }
      pushes += kBurst;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(pushes));
  state.counters["sessions"] = static_cast<double>(n);
  state.counters["frames_per_sec"] = benchmark::Counter(
      static_cast<double>(pushes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SessionPush)
    ->ArgNames({"sessions"})
    ->Args({1000})
    ->Args({10000})
    ->Args({100000})
    ->UseRealTime();

void BM_SessionCreateDestroyChurn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto model = MakeModel(kStates);
  serve::SessionManagerOptions opts;
  opts.lag = kLag;
  serve::SessionManager<double> mgr(model, opts);
  const std::vector<double> pool = MakeObsPool();

  // Reach the high-water mark once; the measured loop then cycles slots
  // and ring blocks purely through the free lists.
  std::vector<serve::SessionHandle> handles(n);
  for (size_t s = 0; s < n; ++s) handles[s] = mgr.CreateSession().value();

  size_t victim = 0;
  uint64_t cycles = 0;
  int label = 0;
  for (auto _ : state) {
    mgr.DestroySession(handles[victim]);
    auto created = mgr.CreateSession();
    handles[victim] = created.value();
    mgr.Push(handles[victim], pool[cycles & (kObsPool - 1)], &label);
    victim = (victim + 257) % n;
    ++cycles;
  }
  state.SetItemsProcessed(static_cast<int64_t>(cycles));
  state.counters["sessions"] = static_cast<double>(n);
  if (mgr.slot_capacity() != n) {
    state.SkipWithError("slot pool grew past its high-water mark");
  }
}
BENCHMARK(BM_SessionCreateDestroyChurn)
    ->ArgNames({"sessions"})
    ->Args({1000})
    ->Args({100000})
    ->UseRealTime();

}  // namespace

// main() lives in perf_main.cc (shared across perf benches): it adds the
// kernel_isa context entry to every benchmark JSON before running.
