// Reproduces Fig. 4: histograms of inferred hidden states under ground-truth,
// dHMM-learned, and HMM-learned parameters at the flat-emission setting
// sigma = 2.825, with the effective-state threshold sigma_F drawn in.
// Paper shape: dHMM keeps all five states above threshold; HMM keeps two.
#include <cstdio>

#include "common.h"
#include "util/string_util.h"

int main() {
  using namespace dhmm;
  bench::PrintHeader("Fig. 4", "inferred-state histogram at sigma = 2.825");

  const size_t n_seq = static_cast<size_t>(BenchScaled(300, 100));
  const size_t len = 6;
  bench::ToyRun run = bench::RunToy(/*sigma=*/2.825, n_seq, len,
                                    /*alpha=*/1.0, /*seed=*/42,
                                    /*em_iters=*/60);
  const size_t k = data::kToyStates;
  // The paper uses sigma_F = 50 on 300*6 = 1800 frames; scale to our frames.
  const double total_frames = static_cast<double>(n_seq * len);
  const double sigma_f = 50.0 * total_frames / 1800.0;

  linalg::Vector hist_truth = eval::StateHistogram(run.truth_paths, k);
  linalg::Vector hist_hmm = eval::StateHistogram(run.hmm_paths, k);
  linalg::Vector hist_dhmm = eval::StateHistogram(run.dhmm_paths, k);

  TextTable table({"state", "true", "dHMM", "HMM"});
  for (size_t i = 0; i < k; ++i) {
    table.AddRow({StrFormat("%zu", i + 1), StrFormat("%.0f", hist_truth[i]),
                  StrFormat("%.0f", hist_dhmm[i]),
                  StrFormat("%.0f", hist_hmm[i])});
  }
  table.Print();

  std::printf("threshold sigma_F = %.0f frames\n", sigma_f);
  std::printf("#states above threshold: true=%d dHMM=%d HMM=%d\n",
              eval::CountEffectiveStates(hist_truth, sigma_f),
              eval::CountEffectiveStates(hist_dhmm, sigma_f),
              eval::CountEffectiveStates(hist_hmm, sigma_f));
  std::printf("\nExpected shape (paper): dHMM identifies all five states; HMM "
              "identifies ~two, with the rest below sigma_F.\n");
  return 0;
}
