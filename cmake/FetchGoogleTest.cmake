# Brings in GoogleTest via FetchContent and defines GTest::gtest_main.
#
# On machines with the Debian googletest source package installed (as in
# CI and the dev container) the local tree is used so configure works
# offline; otherwise the pinned upstream tarball below is fetched. That
# pin (version + SHA256) is the dependency lockfile: CI keys its
# FetchContent cache on this file's hash.
include(FetchContent)

if(EXISTS /usr/src/googletest/CMakeLists.txt)
  FetchContent_Declare(googletest SOURCE_DIR /usr/src/googletest)
else()
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
endif()

set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
