# Applies DHMM_SANITIZE (a semicolon-separated sanitizer list, e.g.
# "address;undefined") to the shared dhmm_build_flags interface target.
# Driven by the `asan` preset in CMakePresets.json; empty means none.

function(dhmm_apply_sanitizers target)
  if(NOT DHMM_SANITIZE)
    return()
  endif()
  foreach(san IN LISTS DHMM_SANITIZE)
    target_compile_options(${target} INTERFACE -fsanitize=${san})
    target_link_options(${target} INTERFACE -fsanitize=${san})
  endforeach()
  # UBSan recovers-and-continues by default, which would let CI pass on
  # undefined behavior; make any detected UB fatal.
  if("undefined" IN_LIST DHMM_SANITIZE)
    target_compile_options(${target} INTERFACE -fno-sanitize-recover=undefined)
    target_link_options(${target} INTERFACE -fno-sanitize-recover=undefined)
  endif()
  target_compile_options(${target} INTERFACE -fno-omit-frame-pointer)
endfunction()
